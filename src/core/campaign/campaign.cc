#include "core/campaign/campaign.hh"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <memory>

#include "core/campaign/faults.hh"
#include "core/campaign/journal.hh"
#include "core/obs/log.hh"
#include "core/obs/metrics.hh"
#include "core/obs/trace.hh"

namespace swcc::campaign
{

namespace
{

#if SWCC_OBS_ENABLED
/** Adds this run's campaign accounting to the obs registry. */
void
recordCampaignMetrics(const CampaignReport &report)
{
    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("campaign.cells").add(report.cells);
    registry.counter("campaign.cells_from_journal")
        .add(report.fromJournal);
    registry.counter("campaign.cells_executed").add(report.executed);
    registry.counter("campaign.retries").add(report.retries);
    registry.counter("campaign.poisoned").add(report.poisoned);
    registry.counter("campaign.timeouts").add(report.timeouts);
}
#endif

std::string
envString(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
}

std::uint64_t
envUnsigned(const char *name, std::uint64_t fallback)
{
    const std::string text = envString(name);
    if (text.empty()) {
        return fallback;
    }
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        return fallback;
    }
    return parsed;
}

} // namespace

std::string
CampaignReport::summary() const
{
    std::string text = std::to_string(cells) + " cells (" +
        std::to_string(fromJournal) + " from journal, " +
        std::to_string(executed) + " executed";
    if (retries > 0) {
        text += ", " + std::to_string(retries) + " retries";
    }
    if (timeouts > 0) {
        text += ", " + std::to_string(timeouts) + " timeouts";
    }
    if (poisoned > 0) {
        text += ", " + std::to_string(poisoned) + " poisoned";
    }
    return text + ")";
}

void
CampaignReport::merge(const CampaignReport &other)
{
    cells += other.cells;
    fromJournal += other.fromJournal;
    executed += other.executed;
    retries += other.retries;
    poisoned += other.poisoned;
    timeouts += other.timeouts;
}

CampaignOptions
envCampaignOptions(const std::string &tag)
{
    CampaignOptions options;
    const std::string dir = envString("SWCC_JOURNAL_DIR");
    if (!dir.empty()) {
        options.journalPath = dir + "/" + tag + ".journal";
        std::string resume = envString("SWCC_RESUME");
        for (char &c : resume) {
            c = static_cast<char>(std::tolower(c));
        }
        options.resume = resume == "1" || resume == "true" ||
            resume == "yes" || resume == "on";
    }
    options.policy.maxRetries = static_cast<unsigned>(
        envUnsigned("SWCC_TASK_RETRIES", options.policy.maxRetries));
    options.policy.timeoutMs =
        envUnsigned("SWCC_TASK_TIMEOUT_MS", options.policy.timeoutMs);
    options.policy.backoffBaseMs =
        envUnsigned("SWCC_BACKOFF_MS", options.policy.backoffBaseMs);
    options.seed = envUnsigned("SWCC_CAMPAIGN_SEED", options.seed);
    options.cellsPerTask = envUnsigned("SWCC_CELLS_PER_TASK",
                                       options.cellsPerTask);
    return options;
}

namespace
{

/**
 * Batch size for scheduling cells: explicit knob when set, else ~4
 * batches per lane (capped) so cheap cells amortise the wake/steal
 * cost while uneven ones still rebalance.
 */
std::size_t
resolveGrain(const CampaignOptions &options, std::size_t pending)
{
    if (options.cellsPerTask != 0) {
        return options.cellsPerTask;
    }
    const std::size_t lanes = configuredThreads();
    const std::size_t grain = pending / (std::max<std::size_t>(lanes, 1) * 4);
    return std::min<std::size_t>(std::max<std::size_t>(grain, 1), 64);
}

} // namespace

std::vector<std::vector<double>>
runCells(std::size_t n, std::size_t width,
         const std::function<std::uint64_t(std::size_t)> &keyOf,
         const std::function<std::vector<double>(std::size_t)> &eval,
         const CampaignOptions &options, CampaignReport *report)
{
    if (!options.faultSpec.empty()) {
        configureFaults(options.faultSpec, options.seed);
    }

    CampaignReport local;
    local.cells = n;

    std::vector<std::vector<double>> results(n);
    std::vector<std::size_t> pending;
    pending.reserve(n);

    // Resolve what the journal already knows.
    if (!options.journalPath.empty() && options.resume) {
        obs::ScopedPhase phase("campaign: load journal");
        const auto known = Journal::load(options.journalPath);
        for (std::size_t i = 0; i < n; ++i) {
            const auto it = known.find(keyOf(i));
            if (it != known.end() && it->second.size() == width) {
                results[i] = it->second;
                ++local.fromJournal;
            } else {
                pending.push_back(i);
            }
        }
        if (local.fromJournal > 0) {
            SWCC_LOG_INFO("campaign: resumed " +
                          std::to_string(local.fromJournal) + "/" +
                          std::to_string(n) + " cells from " +
                          options.journalPath);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            pending.push_back(i);
        }
    }

    std::unique_ptr<Journal> journal;
    if (!options.journalPath.empty()) {
        journal = std::make_unique<Journal>(options.journalPath,
                                            options.resume);
    }

    std::vector<TaskOutcome> outcomes;
    {
        obs::ScopedPhase phase("campaign: run cells");
        try {
            const ResilienceStats stats = parallelForResilient(
                pending.size(),
                [&](std::size_t p) {
                    const std::size_t idx = pending[p];
                    // The kill site sits at task start so an injected
                    // kill lands between cells, like a real SIGKILL
                    // would most often.
                    checkFault(FaultSite::TaskKill);
                    checkFault(FaultSite::TaskTimeout);
                    results[idx] = eval(idx);
                    if (journal) {
                        journal->append(keyOf(idx), results[idx]);
                    }
                },
                options.policy, &outcomes,
                resolveGrain(options, pending.size()));
            local.retries = stats.retries;
            local.poisoned = stats.poisoned;
            local.timeouts = stats.timeouts;
        } catch (const FatalTaskError &) {
            // Completed cells are enqueued for group commit; the
            // journal's destructor (unwinding with this frame) flushes
            // them, so a `--resume` run recovers every finished cell.
#if SWCC_OBS_ENABLED
            recordCampaignMetrics(local);
#endif
            if (report != nullptr) {
                *report = local;
            }
            throw;
        }
    }

    // Poisoned cells degrade to NaN rows — journaled too, so a
    // resumed run reproduces the same (NaN-guarded) artifacts.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t p = 0; p < pending.size(); ++p) {
        const std::size_t idx = pending[p];
        if (p < outcomes.size() &&
            outcomes[p] == TaskOutcome::Poisoned) {
            results[idx].assign(width, nan);
            if (journal) {
                journal->append(keyOf(idx), results[idx]);
            }
            SWCC_LOG_WARN("campaign: cell " + std::to_string(idx) +
                          " poisoned after retries; emitting NaNs");
        }
        ++local.executed;
    }

    // Group-commit barrier: returning from runCells() means every
    // record (results and NaN rows alike) is durable, preserving the
    // old per-cell-fsync guarantee at the run level.
    if (journal) {
        journal->sync();
    }

#if SWCC_OBS_ENABLED
    recordCampaignMetrics(local);
#endif
    if (report != nullptr) {
        *report = local;
    }
    return results;
}

} // namespace swcc::campaign
