/**
 * @file
 * Crash-safe artifact writes: temp file + fsync + atomic rename.
 *
 * Every CSV/JSON/trace artifact the toolkit leaves on disk is the
 * *output* of a potentially long campaign; a process killed mid-write
 * must never leave a truncated file that parses as a complete result.
 * atomicWriteFile() writes into a sibling temporary file, flushes it
 * to stable storage, and renames it over the destination — readers
 * observe either the old content or the complete new content, never a
 * partial write.
 */

#ifndef SWCC_CORE_CAMPAIGN_ATOMIC_FILE_HH
#define SWCC_CORE_CAMPAIGN_ATOMIC_FILE_HH

#include <functional>
#include <iosfwd>
#include <string>

namespace swcc::campaign
{

/**
 * Writes @p path atomically, creating missing parent directories.
 *
 * @p writer receives an output stream positioned at the start of an
 * empty temporary file in the destination directory; when it returns,
 * the temporary is flushed, fsync()ed, and renamed over @p path. On
 * any failure (including an exception from @p writer) the temporary
 * is removed and the destination is left untouched.
 *
 * @param binary Open the temporary in binary mode.
 * @throws std::runtime_error if the file cannot be written or synced.
 */
void atomicWriteFile(const std::string &path,
                     const std::function<void(std::ostream &)> &writer,
                     bool binary = false);

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_ATOMIC_FILE_HH
