#include "core/campaign/faults.hh"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/campaign/cell_hash.hh"
#include "core/obs/metrics.hh"

namespace swcc::campaign
{

namespace
{

enum class Mode : std::uint8_t
{
    Off,
    Count,       ///< Fail ops [skip, skip + count).
    Probability, ///< Fail when hash(seed, site, op) < threshold.
};

struct SiteRule
{
    Mode mode = Mode::Off;
    std::uint64_t count = 0;
    std::uint64_t skip = 0;
    std::uint64_t threshold = 0; ///< Probability mode, out of 2^32.
};

struct SiteState
{
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> injected{0};
};

std::mutex config_mutex;
std::array<SiteRule, kNumFaultSites> rules;
std::array<SiteState, kNumFaultSites> states;
std::atomic<bool> any_active{false};
std::atomic<bool> env_checked{false};
std::uint64_t fault_seed = 1;

std::size_t
siteIndex(FaultSite site)
{
    return static_cast<std::size_t>(site);
}

FaultSite
siteFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        if (faultSiteName(site) == name) {
            return site;
        }
    }
    throw std::invalid_argument(
        "unknown fault site '" + std::string(name) +
        "' (expected trace-io, solver-bus, solver-net, task-kill, "
        "or task-timeout)");
}

std::uint64_t
parseUnsigned(std::string_view text, std::string_view what)
{
    if (text.empty()) {
        throw std::invalid_argument("fault spec: empty " +
                                    std::string(what));
    }
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            throw std::invalid_argument(
                "fault spec: bad " + std::string(what) + " '" +
                std::string(text) + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

/** Parses one `site:count[@skip]` or `site:P%` entry into rules. */
void
parseEntry(std::string_view entry)
{
    const auto colon = entry.find(':');
    if (colon == std::string_view::npos) {
        throw std::invalid_argument(
            "fault spec entry '" + std::string(entry) +
            "' needs site:count");
    }
    const FaultSite site = siteFromName(entry.substr(0, colon));
    std::string_view tail = entry.substr(colon + 1);

    SiteRule rule;
    if (!tail.empty() && tail.back() == '%') {
        const std::uint64_t percent =
            parseUnsigned(tail.substr(0, tail.size() - 1), "percent");
        if (percent > 100) {
            throw std::invalid_argument(
                "fault spec: probability above 100%");
        }
        rule.mode = Mode::Probability;
        rule.threshold = (percent << 32) / 100;
    } else {
        std::string_view count_text = tail;
        const auto at = tail.find('@');
        if (at != std::string_view::npos) {
            count_text = tail.substr(0, at);
            rule.skip = parseUnsigned(tail.substr(at + 1), "skip");
        }
        rule.mode = Mode::Count;
        rule.count = parseUnsigned(count_text, "count");
    }
    rules[siteIndex(site)] = rule;
}

#if SWCC_OBS_ENABLED
/** The obs counter mirroring a site's injected count. */
obs::Counter &
siteCounter(FaultSite site)
{
    static std::array<obs::Counter *, kNumFaultSites> counters = [] {
        std::array<obs::Counter *, kNumFaultSites> out{};
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
            out[i] = &obs::metrics().counter(
                "fault.injected." +
                std::string(faultSiteName(static_cast<FaultSite>(i))));
        }
        return out;
    }();
    return *counters[siteIndex(site)];
}
#endif

/** Loads SWCC_FAULT_INJECT / SWCC_FAULT_SEED exactly once. */
void
ensureEnvConfig()
{
    if (env_checked.load(std::memory_order_acquire)) {
        return;
    }
    std::lock_guard<std::mutex> lock(config_mutex);
    if (env_checked.load(std::memory_order_relaxed)) {
        return;
    }
    const char *spec = std::getenv("SWCC_FAULT_INJECT");
    if (spec != nullptr && *spec != '\0') {
        std::uint64_t seed = 1;
        if (const char *seed_env = std::getenv("SWCC_FAULT_SEED")) {
            seed = parseUnsigned(seed_env, "SWCC_FAULT_SEED");
        }
        std::string text(spec);
        std::size_t begin = 0;
        while (begin <= text.size()) {
            const auto end = text.find(',', begin);
            const auto len = (end == std::string::npos
                ? text.size() : end) - begin;
            if (len > 0) {
                parseEntry(std::string_view(text).substr(begin, len));
            }
            if (end == std::string::npos) {
                break;
            }
            begin = end + 1;
        }
        fault_seed = seed;
        any_active.store(true, std::memory_order_relaxed);
    }
    env_checked.store(true, std::memory_order_release);
}

[[noreturn]] void
throwFor(FaultSite site, std::uint64_t op)
{
    const std::string what = "injected fault: " +
        std::string(faultSiteName(site)) + " (operation " +
        std::to_string(op) + ")";
    switch (site) {
      case FaultSite::TraceIo:
        throw InjectedIoFailure(what);
      case FaultSite::SolverBus:
      case FaultSite::SolverNet:
        throw SolverNonConvergence(what);
      case FaultSite::TaskKill:
        throw TaskKilled(what);
      case FaultSite::TaskTimeout:
        throw TaskTimeoutError(what);
    }
    throw std::runtime_error(what); // Unreachable.
}

} // namespace

std::string_view
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::TraceIo:     return "trace-io";
      case FaultSite::SolverBus:   return "solver-bus";
      case FaultSite::SolverNet:   return "solver-net";
      case FaultSite::TaskKill:    return "task-kill";
      case FaultSite::TaskTimeout: return "task-timeout";
    }
    return "?";
}

void
configureFaults(const std::string &spec, std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(config_mutex);
    for (SiteRule &rule : rules) {
        rule = SiteRule{};
    }
    for (SiteState &state : states) {
        state.ops.store(0, std::memory_order_relaxed);
    }
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const auto end = spec.find(',', begin);
        const auto len =
            (end == std::string::npos ? spec.size() : end) - begin;
        if (len > 0) {
            parseEntry(std::string_view(spec).substr(begin, len));
        }
        if (end == std::string::npos) {
            break;
        }
        begin = end + 1;
    }
    fault_seed = seed;
    bool active = false;
    for (const SiteRule &rule : rules) {
        active = active || rule.mode != Mode::Off;
    }
    any_active.store(active, std::memory_order_relaxed);
    env_checked.store(true, std::memory_order_release);
}

void
clearFaults()
{
    configureFaults(std::string(), 1);
}

bool
faultsActive()
{
    ensureEnvConfig();
    return any_active.load(std::memory_order_relaxed);
}

void
checkFault(FaultSite site)
{
    if (!env_checked.load(std::memory_order_acquire)) {
        ensureEnvConfig();
    }
    if (!any_active.load(std::memory_order_relaxed)) {
        return;
    }
    SiteState &state = states[siteIndex(site)];
    const SiteRule rule = [&] {
        std::lock_guard<std::mutex> lock(config_mutex);
        return rules[siteIndex(site)];
    }();
    if (rule.mode == Mode::Off) {
        return;
    }
    const std::uint64_t op =
        state.ops.fetch_add(1, std::memory_order_relaxed);
    bool fire = false;
    if (rule.mode == Mode::Count) {
        fire = op >= rule.skip && op < rule.skip + rule.count;
    } else {
        // Deterministic per (seed, site, op): mix into 64 bits and
        // compare the top 32 against the threshold.
        struct
        {
            std::uint64_t seed;
            std::uint64_t site;
            std::uint64_t op;
        } key{fault_seed, siteIndex(site), op};
        const std::uint64_t hash =
            fnv1a64(&key, sizeof key, 0xcbf29ce484222325ull);
        fire = (hash >> 32) < rule.threshold;
    }
    if (!fire) {
        return;
    }
    state.injected.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
    siteCounter(site).add(1);
#endif
    throwFor(site, op);
}

std::uint64_t
injectedCount(FaultSite site)
{
    return states[siteIndex(site)].injected.load(
        std::memory_order_relaxed);
}

} // namespace swcc::campaign
