#include "core/campaign/atomic_file.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace swcc::campaign
{

namespace
{

/** fsync() the file at @p path (data and metadata). */
void
syncFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw std::runtime_error("cannot reopen " + path + " for fsync");
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        throw std::runtime_error("fsync failed for " + path);
    }
}

/** fsync() the directory containing @p path so the rename is durable. */
void
syncParentDir(const std::string &path)
{
    std::filesystem::path dir =
        std::filesystem::path(path).parent_path();
    if (dir.empty()) {
        dir = ".";
    }
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return; // Not fatal: the rename itself already happened.
    }
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &writer,
                bool binary)
{
    // Same directory as the destination so the rename cannot cross a
    // filesystem boundary; pid-suffixed so concurrent processes never
    // clobber each other's temporaries.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        // First artifact into a fresh output tree (e.g. a bench run
        // pointed at bench_results/new-dir/) creates it on demand.
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            throw std::runtime_error("cannot create directory " +
                                     parent.string() + ": " +
                                     ec.message());
        }
    }
    try {
        {
            std::ofstream os(tmp, binary
                ? std::ios::binary | std::ios::trunc
                : std::ios::trunc);
            if (!os) {
                throw std::runtime_error("cannot open " + tmp +
                                         " for writing");
            }
            writer(os);
            if (!os.flush()) {
                throw std::runtime_error("failed to write " + tmp);
            }
        }
        syncFile(tmp);
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            throw std::runtime_error("cannot rename " + tmp +
                                     " to " + path + ": " +
                                     ec.message());
        }
        syncParentDir(path);
    } catch (...) {
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
        throw;
    }
}

} // namespace swcc::campaign
