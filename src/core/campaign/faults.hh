/**
 * @file
 * Deterministic fault injection for campaign resilience testing.
 *
 * Production code calls checkFault(site) at the few places where the
 * real world can fail — trace file reads, solver convergence, a task
 * being killed mid-cell. With no spec configured the check is one
 * relaxed atomic load. With SWCC_FAULT_INJECT (or configureFaults())
 * active, the site throws its characteristic exception on a
 * deterministic subset of its operations, letting tests drive the
 * retry / backoff / poisoned-cell / resume machinery end to end and
 * assert the *exact* injected counts back out of the obs metrics
 * (`fault.injected.<site>`).
 *
 * Spec grammar (comma-separated entries):
 *
 *   site:COUNT           fail the first COUNT operations at the site
 *   site:COUNT@SKIP      skip SKIP operations first, then fail COUNT
 *   site:P%              fail each operation with probability P/100,
 *                        decided by a hash of (seed, site, op index) —
 *                        deterministic for a given campaign seed
 *
 * Sites: trace-io, solver-bus, solver-net, task-kill, task-timeout.
 *
 * Example: SWCC_FAULT_INJECT="solver-bus:2,task-kill:1@5" fails the
 * first two bus solves (retryable) and kills the sixth campaign task
 * (fatal — the campaign aborts as if the process died, and a
 * `--resume` run completes it).
 */

#ifndef SWCC_CORE_CAMPAIGN_FAULTS_HH
#define SWCC_CORE_CAMPAIGN_FAULTS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/parallel.hh"

namespace swcc::campaign
{

/** Operation classes that can be made to fail. */
enum class FaultSite : std::uint8_t
{
    TraceIo,     ///< Trace file reads (loadTrace).
    SolverBus,   ///< Bus MVA solves (solveBus*).
    SolverNet,   ///< Network fixed-point solves (solveComputeFraction*).
    TaskKill,    ///< Campaign task start: simulates a process kill.
    TaskTimeout, ///< Campaign task start: simulates a hung cell.
};

inline constexpr std::size_t kNumFaultSites = 5;

/** Spec name of a site ("trace-io", "solver-bus", ...). */
std::string_view faultSiteName(FaultSite site);

/** A solver failed (or was made to fail) to converge. Retryable. */
struct SolverNonConvergence : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** An injected I/O failure on a trace read. Retryable. */
struct InjectedIoFailure : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * An injected mid-cell kill. Derives FatalTaskError, so the pool
 * aborts the whole job — the closest in-process stand-in for
 * `kill -9` that tests can still observe.
 */
struct TaskKilled : FatalTaskError
{
    using FatalTaskError::FatalTaskError;
};

/**
 * Installs @p spec (see file comment), replacing any active config.
 * An empty spec disables injection. @p seed feeds the probabilistic
 * mode; count mode is seed-independent.
 *
 * @throws std::invalid_argument on an unparseable spec.
 */
void configureFaults(const std::string &spec, std::uint64_t seed);

/**
 * Removes all fault configuration and zeroes the per-site operation
 * counters (injected-count metrics are monotonic and persist).
 */
void clearFaults();

/** True when any site has an active fault rule. */
bool faultsActive();

/**
 * Counts one operation at @p site and throws the site's exception if
 * the active spec says this operation fails. The first call lazily
 * installs SWCC_FAULT_INJECT (seeded by SWCC_FAULT_SEED, default 1)
 * when configureFaults() has not run, so every binary — CLI, benches,
 * tests — honours the environment with no wiring.
 */
void checkFault(FaultSite site);

/** Faults injected at @p site since process start (monotonic). */
std::uint64_t injectedCount(FaultSite site);

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_FAULTS_HH
