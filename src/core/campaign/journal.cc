#include "core/campaign/journal.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#include "core/campaign/cell_hash.hh"
#include "core/obs/log.hh"
#include "core/obs/metrics.hh"

namespace swcc::campaign
{

namespace
{

constexpr std::string_view kHeader = "# swcc journal v1\n";

/** Ring capacity: bounds memory while keeping producers un-stalled. */
constexpr std::size_t kQueueCapacity = 1024;

/** Records coalesced into one writev+fsync group, at most. */
constexpr std::size_t kMaxBatchRecords = 512;

std::string
hex16(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xfu];
        value >>= 4;
    }
    return out;
}

bool
parseHex16(std::string_view token, std::uint64_t &out)
{
    if (token.size() != 16) {
        return false;
    }
    std::uint64_t value = 0;
    for (char c : token) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    out = value;
    return true;
}

double
bitsToDouble(std::uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

std::uint64_t
doubleToBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

#if SWCC_OBS_ENABLED
/** Records one committed group: how many records, one fsync. */
void
noteCommit(std::size_t records)
{
    static obs::Counter &recs =
        obs::metrics().counter("journal.records");
    static obs::Counter &batches =
        obs::metrics().counter("journal.batches");
    static obs::Counter &fsyncs =
        obs::metrics().counter("journal.fsyncs");
    recs.add(records);
    batches.add(1);
    fsyncs.add(1);
}
#endif

/**
 * Paths already opened by a Journal in this process. A campaign's
 * first writer decides freshness (truncate unless resuming); later
 * drivers sharing the path — e.g. several validate() calls of one
 * bench — always append.
 */
std::mutex opened_mutex;
std::set<std::string> opened_paths;

} // namespace

CommitQueue::CommitQueue(std::size_t capacity)
{
    std::size_t size = 1;
    while (size < capacity) {
        size <<= 1;
    }
    mask_ = size - 1;
    slots_ = std::make_unique<Slot[]>(size);
    for (std::size_t i = 0; i < size; ++i) {
        slots_[i].seq.store(i, std::memory_order_relaxed);
    }
}

bool
CommitQueue::tryPush(std::string &&record)
{
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
        Slot &slot = slots_[pos & mask_];
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        const std::int64_t dif =
            static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
        if (dif == 0) {
            if (head_.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
                slot.record = std::move(record);
                slot.seq.store(pos + 1, std::memory_order_release);
                return true;
            }
        } else if (dif < 0) {
            return false; // Full: a lap behind the consumers.
        } else {
            pos = head_.load(std::memory_order_relaxed);
        }
    }
}

bool
CommitQueue::tryPop(std::string &record)
{
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
        Slot &slot = slots_[pos & mask_];
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        const std::int64_t dif = static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(pos + 1);
        if (dif == 0) {
            if (tail_.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
                record = std::move(slot.record);
                slot.record.clear();
                slot.seq.store(pos + mask_ + 1,
                               std::memory_order_release);
                return true;
            }
        } else if (dif < 0) {
            return false; // Empty.
        } else {
            pos = tail_.load(std::memory_order_relaxed);
        }
    }
}

Journal::Journal(std::string path, bool keep_existing)
    : path_(std::move(path)), queue_(kQueueCapacity)
{
    bool truncate = !keep_existing;
    {
        std::lock_guard<std::mutex> lock(opened_mutex);
        if (!opened_paths.insert(path_).second) {
            truncate = false; // A writer this run already owns it.
        }
    }
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate) {
        flags |= O_TRUNC;
    }
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) {
        throw std::runtime_error("cannot open journal " + path_ +
                                 ": " + std::strerror(errno));
    }
    // An empty (fresh or truncated) journal gets the version header.
    if (::lseek(fd_, 0, SEEK_END) == 0) {
        if (::write(fd_, kHeader.data(), kHeader.size()) < 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error("cannot write journal " + path_ +
                                     ": " + std::strerror(err));
        }
    }
    committer_ = std::thread([this] { commitLoop(); });
}

Journal::~Journal()
{
    stop_.store(true, std::memory_order_release);
    queueCv_.notify_all();
    if (committer_.joinable()) {
        committer_.join(); // Drains and commits everything enqueued.
    }
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

void
Journal::append(std::uint64_t key, const std::vector<double> &values)
{
    // Format on the completing lane — cheap CPU work parallelises;
    // only the durability I/O is funnelled to the committer.
    std::string record = hex16(key);
    record += ' ';
    record += std::to_string(values.size());
    for (double value : values) {
        record += ' ';
        record += hex16(doubleToBits(value));
    }
    record += ' ';
    record += hex16(fnv1a64(record.data(), record.size(),
                            0xcbf29ce484222325ull));
    record += '\n';

    while (!queue_.tryPush(std::move(record))) {
        // Full ring: backpressure. Wait for the committer to drain a
        // group (or surface its error) instead of dropping data.
        std::unique_lock<std::mutex> lock(waitMutex_);
        if (error_) {
            std::rethrow_exception(error_);
        }
        queueCv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    enqueued_.fetch_add(1, std::memory_order_release);
    queueCv_.notify_all();
}

void
Journal::sync()
{
    const std::uint64_t target = enqueued_.load(std::memory_order_acquire);
    std::unique_lock<std::mutex> lock(waitMutex_);
    queueCv_.notify_all();
    committedCv_.wait(lock, [&] {
        return error_ != nullptr ||
            committed_.load(std::memory_order_acquire) >= target;
    });
    if (error_) {
        std::rethrow_exception(error_);
    }
}

void
Journal::commitLoop()
{
    std::vector<std::string> batch;
    batch.reserve(kMaxBatchRecords);
    for (;;) {
        batch.clear();
        std::string record;
        while (batch.size() < kMaxBatchRecords &&
               queue_.tryPop(record)) {
            batch.push_back(std::move(record));
        }
        if (batch.empty()) {
            if (stop_.load(std::memory_order_acquire)) {
                // One final race-free check: stop_ is set before the
                // destructor joins, and producers are gone by then.
                if (!queue_.tryPop(record)) {
                    return;
                }
                batch.push_back(std::move(record));
            } else {
                std::unique_lock<std::mutex> lock(waitMutex_);
                queueCv_.wait_for(
                    lock, std::chrono::milliseconds(1), [&] {
                        return stop_.load(std::memory_order_acquire) ||
                            enqueued_.load(std::memory_order_acquire) >
                            committed_.load(std::memory_order_acquire);
                    });
                continue;
            }
        }
        try {
            commitBatch(batch);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(waitMutex_);
                if (!error_) {
                    error_ = std::current_exception();
                }
                // Count the group as resolved so waiters unblock and
                // observe the error instead of the count.
                committed_.fetch_add(batch.size(),
                                     std::memory_order_release);
            }
            committedCv_.notify_all();
            queueCv_.notify_all();
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(waitMutex_);
            committed_.fetch_add(batch.size(),
                                 std::memory_order_release);
        }
        committedCv_.notify_all();
        queueCv_.notify_all();
    }
}

void
Journal::commitBatch(const std::vector<std::string> &batch)
{
    // Coalesce the whole group into as few writev() calls as the
    // IOV_MAX limit allows, then make it durable with ONE fsync.
    constexpr std::size_t kMaxIov = IOV_MAX < 1024 ? IOV_MAX : 1024;
    std::vector<struct iovec> iov;
    iov.reserve(std::min(batch.size(), kMaxIov));

    std::size_t next = 0;
    while (next < batch.size()) {
        iov.clear();
        std::size_t bytes = 0;
        const std::size_t limit =
            std::min(batch.size(), next + kMaxIov);
        for (std::size_t i = next; i < limit; ++i) {
            iov.push_back(
                {const_cast<char *>(batch[i].data()), batch[i].size()});
            bytes += batch[i].size();
        }
        std::size_t written = 0;
        std::size_t first = 0;
        while (written < bytes) {
            const ssize_t n = ::writev(
                fd_, iov.data() + first,
                static_cast<int>(iov.size() - first));
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                throw std::runtime_error(
                    "cannot append to journal " + path_ + ": " +
                    std::strerror(errno));
            }
            written += static_cast<std::size_t>(n);
            std::size_t left = static_cast<std::size_t>(n);
            while (left > 0 && first < iov.size()) {
                if (iov[first].iov_len <= left) {
                    left -= iov[first].iov_len;
                    ++first;
                } else {
                    iov[first].iov_base =
                        static_cast<char *>(iov[first].iov_base) + left;
                    iov[first].iov_len -= left;
                    left = 0;
                }
            }
        }
        next = limit;
    }
    if (::fsync(fd_) != 0) {
        throw std::runtime_error("cannot fsync journal " + path_);
    }
#if SWCC_OBS_ENABLED
    noteCommit(batch.size());
#endif
}

std::unordered_map<std::uint64_t, std::vector<double>>
Journal::load(const std::string &path)
{
    std::unordered_map<std::uint64_t, std::vector<double>> records;
    std::ifstream is(path);
    if (!is) {
        return records; // No journal yet: nothing to resume.
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        // Split the trailing checksum from the covered prefix.
        const auto last_space = line.rfind(' ');
        std::uint64_t checksum = 0;
        if (last_space == std::string::npos ||
            !parseHex16(std::string_view(line).substr(last_space + 1),
                        checksum) ||
            checksum != fnv1a64(line.data(), last_space + 1,
                                0xcbf29ce484222325ull)) {
            SWCC_LOG_WARN("journal " + path + ": torn record at line " +
                          std::to_string(line_no) +
                          "; ignoring it and everything after");
            break;
        }
        std::istringstream fields(line.substr(0, last_space));
        std::string key_token;
        std::size_t count = 0;
        std::uint64_t key = 0;
        if (!(fields >> key_token >> count) ||
            !parseHex16(key_token, key)) {
            SWCC_LOG_WARN("journal " + path + ": malformed record at "
                          "line " + std::to_string(line_no));
            break;
        }
        std::vector<double> values;
        values.reserve(count);
        bool ok = true;
        for (std::size_t i = 0; i < count; ++i) {
            std::string value_token;
            std::uint64_t bits = 0;
            if (!(fields >> value_token) ||
                !parseHex16(value_token, bits)) {
                ok = false;
                break;
            }
            values.push_back(bitsToDouble(bits));
        }
        if (!ok) {
            SWCC_LOG_WARN("journal " + path + ": malformed record at "
                          "line " + std::to_string(line_no));
            break;
        }
        records[key] = std::move(values); // Last record wins.
    }
    return records;
}

} // namespace swcc::campaign
