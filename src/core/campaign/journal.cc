#include "core/campaign/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "core/campaign/cell_hash.hh"
#include "core/obs/log.hh"

namespace swcc::campaign
{

namespace
{

constexpr std::string_view kHeader = "# swcc journal v1\n";

std::string
hex16(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xfu];
        value >>= 4;
    }
    return out;
}

bool
parseHex16(std::string_view token, std::uint64_t &out)
{
    if (token.size() != 16) {
        return false;
    }
    std::uint64_t value = 0;
    for (char c : token) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    out = value;
    return true;
}

double
bitsToDouble(std::uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

std::uint64_t
doubleToBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

/**
 * Paths already opened by a Journal in this process. A campaign's
 * first writer decides freshness (truncate unless resuming); later
 * drivers sharing the path — e.g. several validate() calls of one
 * bench — always append.
 */
std::mutex opened_mutex;
std::set<std::string> opened_paths;

} // namespace

Journal::Journal(std::string path, bool keep_existing)
    : path_(std::move(path))
{
    bool truncate = !keep_existing;
    {
        std::lock_guard<std::mutex> lock(opened_mutex);
        if (!opened_paths.insert(path_).second) {
            truncate = false; // A writer this run already owns it.
        }
    }
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate) {
        flags |= O_TRUNC;
    }
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) {
        throw std::runtime_error("cannot open journal " + path_ +
                                 ": " + std::strerror(errno));
    }
    // An empty (fresh or truncated) journal gets the version header.
    if (::lseek(fd_, 0, SEEK_END) == 0) {
        if (::write(fd_, kHeader.data(), kHeader.size()) < 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error("cannot write journal " + path_ +
                                     ": " + std::strerror(err));
        }
    }
}

Journal::~Journal()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

void
Journal::append(std::uint64_t key, const std::vector<double> &values)
{
    std::string record = hex16(key);
    record += ' ';
    record += std::to_string(values.size());
    for (double value : values) {
        record += ' ';
        record += hex16(doubleToBits(value));
    }
    record += ' ';
    record += hex16(fnv1a64(record.data(), record.size(),
                            0xcbf29ce484222325ull));
    record += '\n';

    std::lock_guard<std::mutex> lock(mutex_);
    // One write() to an O_APPEND fd: the record lands contiguously;
    // fsync makes it durable before the cell is considered complete.
    if (::write(fd_, record.data(), record.size()) !=
        static_cast<ssize_t>(record.size())) {
        throw std::runtime_error("cannot append to journal " + path_ +
                                 ": " + std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
        throw std::runtime_error("cannot fsync journal " + path_);
    }
}

std::unordered_map<std::uint64_t, std::vector<double>>
Journal::load(const std::string &path)
{
    std::unordered_map<std::uint64_t, std::vector<double>> records;
    std::ifstream is(path);
    if (!is) {
        return records; // No journal yet: nothing to resume.
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        // Split the trailing checksum from the covered prefix.
        const auto last_space = line.rfind(' ');
        std::uint64_t checksum = 0;
        if (last_space == std::string::npos ||
            !parseHex16(std::string_view(line).substr(last_space + 1),
                        checksum) ||
            checksum != fnv1a64(line.data(), last_space + 1,
                                0xcbf29ce484222325ull)) {
            SWCC_LOG_WARN("journal " + path + ": torn record at line " +
                          std::to_string(line_no) +
                          "; ignoring it and everything after");
            break;
        }
        std::istringstream fields(line.substr(0, last_space));
        std::string key_token;
        std::size_t count = 0;
        std::uint64_t key = 0;
        if (!(fields >> key_token >> count) ||
            !parseHex16(key_token, key)) {
            SWCC_LOG_WARN("journal " + path + ": malformed record at "
                          "line " + std::to_string(line_no));
            break;
        }
        std::vector<double> values;
        values.reserve(count);
        bool ok = true;
        for (std::size_t i = 0; i < count; ++i) {
            std::string value_token;
            std::uint64_t bits = 0;
            if (!(fields >> value_token) ||
                !parseHex16(value_token, bits)) {
                ok = false;
                break;
            }
            values.push_back(bitsToDouble(bits));
        }
        if (!ok) {
            SWCC_LOG_WARN("journal " + path + ": malformed record at "
                          "line " + std::to_string(line_no));
            break;
        }
        records[key] = std::move(values); // Last record wins.
    }
    return records;
}

} // namespace swcc::campaign
