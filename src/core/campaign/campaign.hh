/**
 * @file
 * Resilient, resumable campaign engine.
 *
 * A campaign is an index-addressed set of deterministic cells (the
 * sweeps, sensitivity grids, and validation matrices that regenerate
 * the paper's results). runCells() evaluates them across the thread
 * pool with:
 *
 *  - journaling — each completed cell is durably appended to a
 *    checksummed journal (journal.hh) keyed by its identity hash
 *    (cell_hash.hh), so an interrupted run resumed with
 *    `--resume <journal>` recomputes only the missing cells and its
 *    final CSVs are byte-identical to an uninterrupted run;
 *  - retry / timeout / poisoning — per-cell failures (injected or
 *    real: solver non-convergence, I/O errors) are retried with
 *    exponential backoff and, when exhausted, degrade the cell to a
 *    journaled row of NaNs instead of sinking the campaign
 *    (TaskPolicy, parallel.hh);
 *  - accounting — cells / retries / poisonings / timeouts land in the
 *    obs metrics registry (`campaign.*`) and in the CampaignReport,
 *    and the journal load/run phases appear as spans in the Chrome
 *    trace.
 *
 * Cell results are flat vectors of doubles; each driver (sweep,
 * sensitivity, validation) encodes its result struct to and from that
 * form. Doubles round-trip the journal by bit pattern, which is what
 * makes resumed CSVs byte-identical.
 */

#ifndef SWCC_CORE_CAMPAIGN_CAMPAIGN_HH
#define SWCC_CORE_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel.hh"

namespace swcc::campaign
{

/** How a campaign runs: journaling, resumption, and task policy. */
struct CampaignOptions
{
    /** Journal file; empty disables journaling (and resume). */
    std::string journalPath;
    /** Load the journal first and recompute only missing cells. */
    bool resume = false;
    /** Retry / timeout / poisoning policy for each cell. */
    TaskPolicy policy;
    /** Campaign seed; feeds probabilistic fault injection. */
    std::uint64_t seed = 1;
    /**
     * Consecutive cells per scheduled task. 0 auto-sizes from the cell
     * count and lane count (~4 batches per lane, capped at 64) so the
     * pool schedules batches, not cells — per-cell scheduling made the
     * steal overhead comparable to the cells themselves on fine grids.
     * Results are independent of this knob.
     */
    std::size_t cellsPerTask = 0;
    /**
     * Fault spec installed before the run (see faults.hh); empty
     * leaves any SWCC_FAULT_INJECT environment config in place.
     */
    std::string faultSpec;
};

/** What one runCells() call did. */
struct CampaignReport
{
    std::size_t cells = 0;       ///< Total cells in the campaign.
    std::size_t fromJournal = 0; ///< Satisfied by the loaded journal.
    std::size_t executed = 0;    ///< Evaluated this run.
    std::uint64_t retries = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t timeouts = 0;

    /** One-line human summary ("12 cells (4 from journal, ...)"). */
    std::string summary() const;

    /** Accumulates @p other (campaigns spanning several runCells). */
    void merge(const CampaignReport &other);
};

/**
 * Campaign options sourced from the environment, for bench harnesses:
 * SWCC_JOURNAL_DIR (journal at <dir>/<tag>.journal), SWCC_RESUME
 * (1/true/yes/on), SWCC_TASK_RETRIES, SWCC_TASK_TIMEOUT_MS,
 * SWCC_BACKOFF_MS, SWCC_CAMPAIGN_SEED, SWCC_CELLS_PER_TASK. With
 * SWCC_JOURNAL_DIR unset the returned options disable journaling (the
 * benches' default).
 */
CampaignOptions envCampaignOptions(const std::string &tag);

/**
 * Evaluates cells 0..n-1 resiliently (see file comment).
 *
 * @param n       Number of cells.
 * @param width   Doubles per cell result; poisoned cells yield
 *                @p width NaNs.
 * @param keyOf   Cell identity hash (CellKey) — must depend only on
 *                what the cell computes.
 * @param eval    Evaluates one cell; may throw (retried per policy).
 * @param options Journal / resume / policy configuration.
 * @param report  Filled with this run's accounting when non-null.
 * @return One width-sized value vector per cell, in index order.
 *
 * @throws FatalTaskError (e.g. an injected task-kill) after journaling
 *         every cell that completed — the caller should surface
 *         "resume with --resume <journal>".
 */
std::vector<std::vector<double>>
runCells(std::size_t n, std::size_t width,
         const std::function<std::uint64_t(std::size_t)> &keyOf,
         const std::function<std::vector<double>(std::size_t)> &eval,
         const CampaignOptions &options,
         CampaignReport *report = nullptr);

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_CAMPAIGN_HH
