/**
 * @file
 * Deterministic cell identity for resumable campaigns.
 *
 * A campaign (sweep, sensitivity grid, validation matrix) is a set of
 * independent cells; each cell's identity is the full description of
 * what it computes — scheme, parameter point, processor count, seed —
 * never *when* or *where* it ran. CellKey folds those fields into a
 * 64-bit FNV-1a hash with unambiguous field framing, so a journal
 * written by one run can be matched against the cells of a resumed
 * run regardless of thread count, scheduling order, or how many cells
 * the first run completed.
 *
 * Determinism contract: two cells hash equal iff they were built from
 * the same field sequence. Doubles are hashed by IEEE-754 bit pattern
 * (after normalising -0.0 to 0.0 and any NaN to one canonical NaN),
 * so a value that round-trips through the journal re-hashes
 * identically on any host with IEEE doubles.
 */

#ifndef SWCC_CORE_CAMPAIGN_CELL_HASH_HH
#define SWCC_CORE_CAMPAIGN_CELL_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace swcc
{
struct WorkloadParams;
}

namespace swcc::campaign
{

/**
 * Builder for a campaign cell's identity hash (see file comment).
 *
 * @code
 *   const std::uint64_t h = CellKey("sweep")
 *       .add(paramName(param)).add(value).add(cpus)
 *       .add(schemeName(scheme)).hash();
 * @endcode
 */
class CellKey
{
  public:
    /** @param domain Namespace of the campaign ("sweep", ...). */
    explicit CellKey(std::string_view domain);

    /** Appends a string field. */
    CellKey &add(std::string_view field);

    /** Appends a double by canonical IEEE bit pattern. */
    CellKey &add(double value);

    /** Appends an unsigned integer field. */
    CellKey &add(std::uint64_t value);

    /** Appends every Table 2 parameter of @p params, in table order. */
    CellKey &add(const WorkloadParams &params);

    /** The 64-bit cell hash accumulated so far. */
    std::uint64_t
    hash() const
    {
        return hash_;
    }

  private:
    void mixBytes(const void *data, std::size_t size);
    void mixSeparator();

    std::uint64_t hash_;
};

/** FNV-1a 64 of a byte range; the primitive CellKey is built on. */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed);

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_CELL_HASH_HH
