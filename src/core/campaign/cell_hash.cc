#include "core/campaign/cell_hash.hh"

#include <cmath>
#include <cstring>

#include "core/workload.hh"

namespace swcc::campaign
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

/** One canonical bit pattern per double value (see header). */
std::uint64_t
canonicalBits(double value)
{
    if (std::isnan(value)) {
        return 0x7ff8000000000000ull; // Quiet NaN, zero payload.
    }
    if (value == 0.0) {
        value = 0.0; // Collapse -0.0.
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

CellKey::CellKey(std::string_view domain) : hash_(kFnvOffset)
{
    add(domain);
}

void
CellKey::mixBytes(const void *data, std::size_t size)
{
    hash_ = fnv1a64(data, size, hash_);
}

void
CellKey::mixSeparator()
{
    // A byte that cannot appear inside a field's encoding (fields are
    // either UTF-8 text or fixed-width little-endian words preceded by
    // a tag), so ("ab","c") never collides with ("a","bc").
    const unsigned char sep = 0xff;
    mixBytes(&sep, 1);
}

CellKey &
CellKey::add(std::string_view field)
{
    const unsigned char tag = 's';
    mixBytes(&tag, 1);
    mixBytes(field.data(), field.size());
    mixSeparator();
    return *this;
}

CellKey &
CellKey::add(double value)
{
    const unsigned char tag = 'd';
    mixBytes(&tag, 1);
    std::uint64_t bits = canonicalBits(value);
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xffu);
    }
    mixBytes(bytes, sizeof bytes);
    mixSeparator();
    return *this;
}

CellKey &
CellKey::add(std::uint64_t value)
{
    const unsigned char tag = 'u';
    mixBytes(&tag, 1);
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] =
            static_cast<unsigned char>((value >> (8 * i)) & 0xffu);
    }
    mixBytes(bytes, sizeof bytes);
    mixSeparator();
    return *this;
}

CellKey &
CellKey::add(const WorkloadParams &params)
{
    for (ParamId id : kAllParams) {
        add(getParam(params, id));
    }
    return *this;
}

} // namespace swcc::campaign
