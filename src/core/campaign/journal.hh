/**
 * @file
 * Append-only, checksummed campaign journal.
 *
 * As a campaign completes cells, each result is appended to the
 * journal as one self-contained, checksummed record keyed by the
 * cell's identity hash (see cell_hash.hh). Records are written with a
 * single write() to an O_APPEND descriptor and fsync()ed, so a
 * process killed at any instant leaves at worst one torn record at
 * the tail — which load() detects by checksum and drops. A resumed
 * run (`--resume <journal>`) therefore recovers exactly the cells
 * that durably completed and recomputes only the rest.
 *
 * Format (text, one record per line):
 *
 *   # swcc journal v1
 *   <key:16 hex> <n:dec> <v0:16 hex> ... <v(n-1):16 hex> <crc:16 hex>
 *
 * Values are IEEE-754 doubles by bit pattern — exact round trip, so
 * a resumed campaign's final CSVs are byte-identical to an
 * uninterrupted run's. The checksum is FNV-1a 64 over the record text
 * up to and including the space before the checksum field. Duplicate
 * keys are legal (a retried or re-run cell appends again); the last
 * record wins.
 */

#ifndef SWCC_CORE_CAMPAIGN_JOURNAL_HH
#define SWCC_CORE_CAMPAIGN_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace swcc::campaign
{

/**
 * Writer half of the journal (see file comment). Thread-safe: cells
 * completing on different pool lanes append under one mutex, each
 * record flushed and fsync()ed before append() returns.
 */
class Journal
{
  public:
    /**
     * Opens @p path for appending.
     *
     * The first Journal opened for a given path in this process with
     * @p keep_existing false truncates any stale file and writes a
     * fresh header; with @p keep_existing true (a resumed campaign, or
     * a later driver sharing the journal) existing records are kept
     * and new ones appended.
     *
     * @throws std::runtime_error if the file cannot be opened.
     */
    Journal(std::string path, bool keep_existing);

    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Durably appends one record (locked, fsync()ed). */
    void append(std::uint64_t key, const std::vector<double> &values);

    const std::string &
    path() const
    {
        return path_;
    }

    /**
     * Loads every intact record of @p path into a key -> values map
     * (last record wins). A missing file yields an empty map. A
     * corrupt or torn record ends the scan: everything before it is
     * returned, everything after is distrusted (append-only order
     * means later records were written after the damage).
     */
    static std::unordered_map<std::uint64_t, std::vector<double>>
    load(const std::string &path);

  private:
    std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
};

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_JOURNAL_HH
