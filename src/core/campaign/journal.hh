/**
 * @file
 * Append-only, checksummed campaign journal with group commit.
 *
 * As a campaign completes cells, each result becomes one
 * self-contained, checksummed record keyed by the cell's identity hash
 * (see cell_hash.hh). Records are formatted on the completing lane,
 * pushed onto a lock-free bounded completion queue, and drained by a
 * dedicated committer thread that coalesces whole batches into one
 * writev() + one fsync() — so durability costs one disk flush per
 * *group* of cells instead of one per cell, and completing lanes never
 * serialise on storage.
 *
 * Crash-safety contract (unchanged from the per-cell design): a cell
 * is only *recoverable* once its group commits. A process killed at
 * any instant loses at worst the uncommitted tail — at most one torn
 * record plus whole records that never reached the disk — and load()
 * stops at the first record that fails its checksum, distrusting
 * everything after. A resumed run (`--resume <journal>`) therefore
 * recovers exactly the cells that durably committed and recomputes the
 * rest; since cells are deterministic, the resumed CSVs are
 * byte-identical to an uninterrupted run's.
 *
 * Format (text, one record per line):
 *
 *   # swcc journal v1
 *   <key:16 hex> <n:dec> <v0:16 hex> ... <v(n-1):16 hex> <crc:16 hex>
 *
 * Values are IEEE-754 doubles by bit pattern — exact round trip. The
 * checksum is FNV-1a 64 over the record text up to and including the
 * space before the checksum field. Duplicate keys are legal (a retried
 * or re-run cell appends again); the last record wins.
 */

#ifndef SWCC_CORE_CAMPAIGN_JOURNAL_HH
#define SWCC_CORE_CAMPAIGN_JOURNAL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace swcc::campaign
{

/**
 * Lock-free bounded MPMC ring (Vyukov-style sequence counters) holding
 * formatted journal records on their way to the committer thread.
 * Producers that find it full fall back to a condition-variable wait —
 * backpressure, not loss.
 */
class CommitQueue
{
  public:
    /** @param capacity Slot count; rounded up to a power of two. */
    explicit CommitQueue(std::size_t capacity);

    /** Non-blocking enqueue; false when the ring is full. */
    bool tryPush(std::string &&record);

    /** Non-blocking dequeue; false when the ring is empty. */
    bool tryPop(std::string &record);

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> seq;
        std::string record;
    };

    std::unique_ptr<Slot[]> slots_;
    std::uint64_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/**
 * Writer half of the journal (see file comment). Thread-safe: cells
 * completing on different pool lanes enqueue concurrently; the
 * committer thread owns the file descriptor and all durability I/O.
 */
class Journal
{
  public:
    /**
     * Opens @p path for appending and starts the committer thread.
     *
     * The first Journal opened for a given path in this process with
     * @p keep_existing false truncates any stale file and writes a
     * fresh header; with @p keep_existing true (a resumed campaign, or
     * a later driver sharing the journal) existing records are kept
     * and new ones appended.
     *
     * @throws std::runtime_error if the file cannot be opened.
     */
    Journal(std::string path, bool keep_existing);

    /** Drains and commits every enqueued record, then joins. */
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Enqueues one record for group commit. Returns as soon as the
     * record is queued; durability is deferred to the record's group
     * (see sync()). Blocks only when the queue is full (backpressure).
     * Rethrows any error the committer has hit.
     */
    void append(std::uint64_t key, const std::vector<double> &values);

    /**
     * Blocks until every record enqueued before this call is durable
     * (written and fsync()ed), rethrowing any committer error. The
     * campaign calls this once per run phase, making "the run
     * completed" imply "the journal is complete".
     */
    void sync();

    const std::string &
    path() const
    {
        return path_;
    }

    /**
     * Loads every intact record of @p path into a key -> values map
     * (last record wins). A missing file yields an empty map. A
     * corrupt or torn record ends the scan: everything before it is
     * returned, everything after is distrusted (append-only order
     * means later records were written after the damage).
     */
    static std::unordered_map<std::uint64_t, std::vector<double>>
    load(const std::string &path);

  private:
    void commitLoop();

    /** One writev()-coalesced group followed by a single fsync(). */
    void commitBatch(const std::vector<std::string> &batch);

    std::string path_;
    int fd_ = -1;

    CommitQueue queue_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> committed_{0};

    /** Guards error_ and backs both condition variables. */
    std::mutex waitMutex_;
    /** Producers <-> committer: work available / space freed. */
    std::condition_variable queueCv_;
    /** Committer -> sync() waiters: committed_ advanced. */
    std::condition_variable committedCv_;
    std::exception_ptr error_;

    std::thread committer_;
};

} // namespace swcc::campaign

#endif // SWCC_CORE_CAMPAIGN_JOURNAL_HH
