/**
 * @file
 * Common types for the Owicki-Agarwal software cache coherence model.
 *
 * The library models the four cache-coherence schemes compared in
 * "Evaluating the Performance of Software Cache Coherence" (Owicki &
 * Agarwal, ASPLOS 1989): a coherence-free upper bound (Base), two
 * software schemes (No-Cache and Software-Flush), and the Dragon snoopy
 * hardware protocol.
 */

#ifndef SWCC_CORE_TYPES_HH
#define SWCC_CORE_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace swcc
{

/**
 * Cache-coherence scheme evaluated by the model.
 *
 * The first four enumerators match the four workload models of the
 * paper's Section 2.2 (Tables 3-6); the remainder extend the snoopy
 * hardware family with the invalidate-based protocols (MESI, MESIF,
 * MOESI) and an adaptive update/invalidate hybrid, each with its own
 * frequency table and simulator protocol.
 */
enum class Scheme : std::uint8_t
{
    /** No coherence actions at all; performance upper bound (Table 3). */
    Base,
    /** Shared data is uncacheable; read/write-through to memory (Table 4). */
    NoCache,
    /** Shared data cached but explicitly flushed by software (Table 5). */
    SoftwareFlush,
    /** Dragon write-broadcast snoopy hardware protocol (Table 6). */
    Dragon,
    /** Illinois/MESI write-invalidate snoopy protocol. */
    Mesi,
    /** MESI plus a clean-forwarder (F) state supplying shared misses. */
    Mesif,
    /** MESI plus an Owned state deferring dirty write-backs. */
    Moesi,
    /** Adaptive per-block update/invalidate hybrid (Dragon vs MESI). */
    Hybrid,
};

/** Number of schemes in @ref Scheme. */
inline constexpr std::size_t kNumSchemes = 8;

/** Number of schemes evaluated by the paper itself. */
inline constexpr std::size_t kNumPaperSchemes = 4;

/** All schemes, paper order first, then the extension family. */
inline constexpr std::array<Scheme, kNumSchemes> kAllSchemes = {
    Scheme::Base,  Scheme::NoCache, Scheme::SoftwareFlush, Scheme::Dragon,
    Scheme::Mesi,  Scheme::Mesif,   Scheme::Moesi,         Scheme::Hybrid,
};

/**
 * The paper's four schemes, in paper order — for call sites that
 * reproduce a paper artifact exactly (e.g. the Table 8 sensitivity
 * columns) and must not grow with the extension family.
 */
inline constexpr std::array<Scheme, kNumPaperSchemes> kPaperSchemes = {
    Scheme::Base, Scheme::NoCache, Scheme::SoftwareFlush, Scheme::Dragon,
};

/**
 * Human-readable name of a scheme.
 *
 * @param scheme The scheme to name.
 * @return A static, null-terminated name such as "Software-Flush".
 */
constexpr std::string_view
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base:          return "Base";
      case Scheme::NoCache:       return "No-Cache";
      case Scheme::SoftwareFlush: return "Software-Flush";
      case Scheme::Dragon:        return "Dragon";
      case Scheme::Mesi:          return "MESI";
      case Scheme::Mesif:         return "MESIF";
      case Scheme::Moesi:         return "MOESI";
      case Scheme::Hybrid:        return "Adaptive-Hybrid";
    }
    return "unknown";
}

/**
 * True if the scheme can run on a multistage interconnection network.
 *
 * Snoopy protocols require a broadcast medium (a bus); the software
 * schemes and Base work with any processor-memory interconnect, which is
 * the central scalability argument of the paper's Section 6.
 */
constexpr bool
schemeWorksOnNetwork(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Dragon:
      case Scheme::Mesi:
      case Scheme::Mesif:
      case Scheme::Moesi:
      case Scheme::Hybrid:
        return false;
      case Scheme::Base:
      case Scheme::NoCache:
      case Scheme::SoftwareFlush:
        return true;
    }
    return false;
}

/** Cycle counts are modelled as real numbers (expected values). */
using Cycles = double;

} // namespace swcc

#endif // SWCC_CORE_TYPES_HH
