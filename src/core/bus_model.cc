#include "core/bus_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/campaign/faults.hh"
#include "core/obs/metrics.hh"
#include "core/simd.hh"
#include "core/simd_kernels.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/** Records one MVA solve (@p iterations = customer-population steps). */
void
noteBusSolve(unsigned iterations)
{
    static obs::Counter &solves =
        obs::metrics().counter("solver.bus.solves");
    static obs::Counter &iters =
        obs::metrics().counter("solver.bus.iterations");
    solves.add(1);
    iters.add(iterations);
}
#endif

} // namespace

BusSolution
solveBus(const PerInstructionCost &cost, unsigned processors)
{
    if (processors == 0) {
        throw std::invalid_argument("need at least one processor");
    }
    if (cost.channel < 0.0) {
        throw std::invalid_argument("bus demand b must be non-negative");
    }
    if (cost.cpu < cost.channel) {
        throw std::invalid_argument(
            "CPU time per instruction cannot be less than bus time");
    }

    BusSolution sol;
    sol.processors = processors;
    sol.cpu = cost.cpu;
    sol.bus = cost.channel;

    const double service = cost.channel;       // S = b
    const double think = cost.thinkTime();     // Z = c - b

    if (service == 0.0) {
        // No bus traffic at all: no contention is possible.
        sol.waiting = 0.0;
        sol.busUtilization = 0.0;
        sol.busQueueLength = 0.0;
        sol.processorUtilization = 1.0 / cost.cpu;
        sol.processingPower =
            static_cast<double>(processors) * sol.processorUtilization;
        return sol;
    }

    // Exact MVA for a closed network of one queueing station (the bus)
    // plus a delay station (the processors' think time).
    double queue = 0.0;      // Q_k: customers at the bus.
    double response = 0.0;   // R_k: bus response time.
    double throughput = 0.0; // X_k: transactions per cycle.
    for (unsigned k = 1; k <= processors; ++k) {
        response = service * (1.0 + queue);
        throughput = static_cast<double>(k) / (think + response);
        queue = throughput * response;
    }
#if SWCC_OBS_ENABLED
    noteBusSolve(processors);
#endif
    // Campaign resilience: the retry/poison machinery treats a
    // non-finite recursion (or an injected failure) as a retryable
    // solver fault rather than silently emitting garbage.
    campaign::checkFault(campaign::FaultSite::SolverBus);
    if (!std::isfinite(response) || !std::isfinite(queue)) {
        throw campaign::SolverNonConvergence(
            "bus MVA recursion produced a non-finite solution");
    }

    sol.waiting = response - service;
    sol.busUtilization = throughput * service;
    sol.busQueueLength = queue;
    sol.processorUtilization = 1.0 / (cost.cpu + sol.waiting);
    sol.processingPower =
        static_cast<double>(processors) * sol.processorUtilization;
    return sol;
}

std::vector<BusSolution>
solveBusCurve(const PerInstructionCost &cost, unsigned max_processors)
{
    if (max_processors == 0) {
        throw std::invalid_argument("need at least one processor");
    }
    if (cost.channel < 0.0) {
        throw std::invalid_argument("bus demand b must be non-negative");
    }
    if (cost.cpu < cost.channel) {
        throw std::invalid_argument(
            "CPU time per instruction cannot be less than bus time");
    }

    const std::size_t n = max_processors;
    std::vector<BusSolution> curve(n);

    const double service = cost.channel;   // S = b
    const double think = cost.thinkTime(); // Z = c - b

    if (service == 0.0) {
        // No bus traffic at all: no contention at any population.
        const double utilization = 1.0 / cost.cpu;
        for (std::size_t i = 0; i < n; ++i) {
            BusSolution &sol = curve[i];
            sol.processors = static_cast<unsigned>(i) + 1;
            sol.cpu = cost.cpu;
            sol.bus = cost.channel;
            sol.processorUtilization = utilization;
            sol.processingPower =
                static_cast<double>(i + 1) * utilization;
        }
        return curve;
    }

    // One MVA recursion; each population k is a prefix of the same
    // iteration solveBus() runs, so recording the state at every k
    // reproduces the per-point solutions bit for bit.
    std::vector<double> responses(n);
    std::vector<double> throughputs(n);
    std::vector<double> queues(n);
    double queue = 0.0;
    double response = 0.0;
    double throughput = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
        response = service * (1.0 + queue);
        throughput = static_cast<double>(k) / (think + response);
        queue = throughput * response;
        responses[k - 1] = response;
        throughputs[k - 1] = throughput;
        queues[k - 1] = queue;
    }
#if SWCC_OBS_ENABLED
    noteBusSolve(max_processors);
#endif
    // One fault site and finiteness check per curve: an injected or
    // real failure degrades the whole (retryable) cell, exactly as a
    // failed per-point solve would.
    campaign::checkFault(campaign::FaultSite::SolverBus);
    if (!std::isfinite(response) || !std::isfinite(queue)) {
        throw campaign::SolverNonConvergence(
            "bus MVA recursion produced a non-finite solution");
    }

    // Derive pass: straight-line elementwise arithmetic over the
    // contiguous recursion arrays, dispatched to the vector kernel
    // when available (bitwise identical to the scalar loop).
    if (simd::activeIsa() != simd::Isa::Scalar) {
        // Chunked stack buffers keep the kernel's working set in L1
        // and avoid heap traffic (four std::vectors measurably slow
        // this pass down at typical curve sizes).
        constexpr std::size_t kChunk = 64;
        double waiting[kChunk];
        double bus_util[kChunk];
        double proc_util[kChunk];
        double power[kChunk];
        for (std::size_t base = 0; base < n; base += kChunk) {
            const std::size_t len = std::min(kChunk, n - base);
            simd::busDeriveVector(responses.data() + base,
                                  throughputs.data() + base, service,
                                  cost.cpu, base, len, waiting,
                                  bus_util, proc_util, power);
            for (std::size_t c = 0; c < len; ++c) {
                const std::size_t i = base + c;
                BusSolution &sol = curve[i];
                sol.processors = static_cast<unsigned>(i) + 1;
                sol.cpu = cost.cpu;
                sol.bus = cost.channel;
                sol.waiting = waiting[c];
                sol.busUtilization = bus_util[c];
                sol.busQueueLength = queues[i];
                sol.processorUtilization = proc_util[c];
                sol.processingPower = power[c];
            }
        }
        return curve;
    }
    for (std::size_t i = 0; i < n; ++i) {
        BusSolution &sol = curve[i];
        sol.processors = static_cast<unsigned>(i) + 1;
        sol.cpu = cost.cpu;
        sol.bus = cost.channel;
        sol.waiting = responses[i] - service;
        sol.busUtilization = throughputs[i] * service;
        sol.busQueueLength = queues[i];
        sol.processorUtilization = 1.0 / (cost.cpu + sol.waiting);
        sol.processingPower =
            static_cast<double>(i + 1) * sol.processorUtilization;
    }
    return curve;
}

BusSolution
solveBusGeneralService(const PerInstructionCost &cost,
                       unsigned processors, double scv)
{
    if (scv < 0.0) {
        throw std::invalid_argument(
            "squared coefficient of variation must be >= 0");
    }
    if (processors == 0) {
        throw std::invalid_argument("need at least one processor");
    }
    if (cost.channel < 0.0 || cost.cpu < cost.channel) {
        throw std::invalid_argument(
            "per-instruction cost must satisfy 0 <= b <= c");
    }

    BusSolution sol;
    sol.processors = processors;
    sol.cpu = cost.cpu;
    sol.bus = cost.channel;

    const double service = cost.channel;
    const double think = cost.thinkTime();

    if (service == 0.0) {
        sol.processorUtilization = 1.0 / cost.cpu;
        sol.processingPower =
            static_cast<double>(processors) * sol.processorUtilization;
        return sol;
    }

    // Reiser's approximate MVA with a residual-service correction for
    // non-exponential FCFS service. With one customer there is no
    // queueing regardless of the distribution.
    double queue = 0.0;
    double utilization = 0.0;
    double response = service;
    double throughput = 1.0 / (think + response);
    queue = throughput * response;
    utilization = throughput * service;
    for (unsigned k = 2; k <= processors; ++k) {
        response = service * (1.0 + queue) -
            (1.0 - scv) / 2.0 * utilization * service;
        response = std::max(response, service);
        throughput = static_cast<double>(k) / (think + response);
        queue = throughput * response;
        utilization = throughput * service;
    }
#if SWCC_OBS_ENABLED
    noteBusSolve(processors);
#endif
    campaign::checkFault(campaign::FaultSite::SolverBus);
    if (!std::isfinite(response) || !std::isfinite(queue)) {
        throw campaign::SolverNonConvergence(
            "bus approximate MVA produced a non-finite solution");
    }

    sol.waiting = response - service;
    sol.busUtilization = utilization;
    sol.busQueueLength = queue;
    sol.processorUtilization = 1.0 / (cost.cpu + sol.waiting);
    sol.processingPower =
        static_cast<double>(processors) * sol.processorUtilization;
    return sol;
}

double
busSaturationPower(const PerInstructionCost &cost)
{
    if (cost.channel == 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return 1.0 / cost.channel;
}

double
busSaturationProcessors(const PerInstructionCost &cost)
{
    if (cost.channel == 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return cost.cpu / cost.channel;
}

} // namespace swcc
