/**
 * @file
 * Hardware operations of the system model (paper Tables 1 and 9).
 */

#ifndef SWCC_CORE_OPERATION_HH
#define SWCC_CORE_OPERATION_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace swcc
{

/**
 * A hardware operation whose cost the system model assigns.
 *
 * The set is the union of the operations in the paper's Table 1 (bus
 * system model) and Table 9 (network system model). The network model
 * names "clean fetch"/"dirty fetch" what the bus model names "clean
 * miss (mem)"/"dirty miss (mem)"; we use one enumerator for both and let
 * the cost model supply the medium-specific timing.
 */
enum class Operation : std::uint8_t
{
    /** Ordinary instruction execution (every instruction except flush). */
    InstrExec,
    /** Cache miss satisfied from memory, replaced block clean. */
    CleanMissMem,
    /** Cache miss satisfied from memory, replaced block dirty. */
    DirtyMissMem,
    /** No-Cache: load of a shared word directly from memory. */
    ReadThrough,
    /** No-Cache: store of a shared word directly to memory. */
    WriteThrough,
    /** Software-Flush: flush of a clean block (invalidate only). */
    CleanFlush,
    /** Software-Flush: flush of a dirty block (invalidate + write-back). */
    DirtyFlush,
    /** Dragon: broadcast of a written word to other caches. */
    WriteBroadcast,
    /** Dragon: miss supplied by another cache, replaced block clean. */
    CleanMissCache,
    /** Dragon: miss supplied by another cache, replaced block dirty. */
    DirtyMissCache,
    /** Dragon: a cycle stolen from a processor by a snooped broadcast. */
    CycleSteal,
};

/** Number of operations in @ref Operation. */
inline constexpr std::size_t kNumOperations = 11;

/** All operations, in Table 1 order, for iteration. */
inline constexpr std::array<Operation, kNumOperations> kAllOperations = {
    Operation::InstrExec,
    Operation::CleanMissMem,
    Operation::DirtyMissMem,
    Operation::ReadThrough,
    Operation::WriteThrough,
    Operation::CleanFlush,
    Operation::DirtyFlush,
    Operation::WriteBroadcast,
    Operation::CleanMissCache,
    Operation::DirtyMissCache,
    Operation::CycleSteal,
};

/**
 * Human-readable name of an operation, matching the paper's Table 1.
 */
std::string_view operationName(Operation op);

/** Index of an operation for use with dense per-operation arrays. */
constexpr std::size_t
operationIndex(Operation op)
{
    return static_cast<std::size_t>(op);
}

} // namespace swcc

#endif // SWCC_CORE_OPERATION_HH
