#include "core/breakdown.hh"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/report.hh"

namespace swcc
{

CostContribution
CostBreakdown::of(Operation op) const
{
    for (const CostContribution &item : items) {
        if (item.op == op) {
            return item;
        }
    }
    CostContribution empty;
    empty.op = op;
    return empty;
}

double
CostBreakdown::usefulShare() const
{
    return totalCpu > 0.0
        ? of(Operation::InstrExec).cpuCycles / totalCpu
        : 0.0;
}

CostBreakdown
costBreakdown(const FrequencyVector &freqs, const CostModel &costs)
{
    CostBreakdown breakdown;
    for (Operation op : kAllOperations) {
        const double freq = freqs.of(op);
        if (freq == 0.0) {
            continue;
        }
        if (!costs.supports(op)) {
            throw std::invalid_argument(
                "workload uses operation '" +
                std::string(operationName(op)) +
                "' which the system model does not support");
        }
        const OpCost cost = costs.cost(op);
        CostContribution item;
        item.op = op;
        item.frequency = freq;
        item.cpuCycles = freq * cost.cpu;
        item.channelCycles = freq * cost.channel;
        breakdown.items.push_back(item);
        breakdown.totalCpu += item.cpuCycles;
        breakdown.totalChannel += item.channelCycles;
    }
    for (CostContribution &item : breakdown.items) {
        item.cpuShare = breakdown.totalCpu > 0.0
            ? item.cpuCycles / breakdown.totalCpu
            : 0.0;
        item.channelShare = breakdown.totalChannel > 0.0
            ? item.channelCycles / breakdown.totalChannel
            : 0.0;
    }
    std::sort(breakdown.items.begin(), breakdown.items.end(),
              [](const CostContribution &a, const CostContribution &b) {
                  return a.cpuCycles > b.cpuCycles;
              });
    return breakdown;
}

CostBreakdown
costBreakdown(Scheme scheme, const WorkloadParams &params)
{
    const BusCostModel costs;
    return costBreakdown(operationFrequencies(scheme, params), costs);
}

void
printBreakdown(const CostBreakdown &breakdown, std::ostream &os)
{
    TextTable table({"operation", "freq/instr", "cpu cycles", "cpu %",
                     "bus cycles", "bus %"});
    for (const CostContribution &item : breakdown.items) {
        table.addRow({std::string(operationName(item.op)),
                      formatNumber(item.frequency, 5),
                      formatNumber(item.cpuCycles, 4),
                      formatNumber(100.0 * item.cpuShare, 1),
                      formatNumber(item.channelCycles, 4),
                      formatNumber(100.0 * item.channelShare, 1)});
    }
    table.addRow({"total (c, b)", "-",
                  formatNumber(breakdown.totalCpu, 4), "100",
                  formatNumber(breakdown.totalChannel, 4),
                  breakdown.totalChannel > 0.0 ? "100" : "0"});
    table.print(os);
}

} // namespace swcc
