/**
 * @file
 * High-level evaluation API: scheme + workload + machine -> performance.
 *
 * This is the library's main entry point; it wires together the system
 * model (cost tables), workload model (operation frequencies), and the
 * appropriate contention model.
 */

#ifndef SWCC_CORE_SCHEME_EVALUATOR_HH
#define SWCC_CORE_SCHEME_EVALUATOR_HH

#include <vector>

#include "core/bus_model.hh"
#include "core/cost_model.hh"
#include "core/network_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/**
 * Evaluates a scheme's performance on a bus-based multiprocessor.
 *
 * @param scheme The coherence scheme.
 * @param params The workload.
 * @param processors Number of processors on the bus.
 * @param costs Bus system model (defaults to paper Table 1).
 */
BusSolution evaluateBus(Scheme scheme, const WorkloadParams &params,
                        unsigned processors);

/** @copydoc evaluateBus */
BusSolution evaluateBus(Scheme scheme, const WorkloadParams &params,
                        unsigned processors, const BusCostModel &costs);

/**
 * Evaluates a scheme's performance on a circuit-switched multistage
 * network with 2^stages processors.
 *
 * Only Base, No-Cache, and Software-Flush are meaningful here; Dragon
 * requires a snooping bus and is rejected.
 *
 * @throws std::invalid_argument for Scheme::Dragon.
 */
NetworkSolution evaluateNetwork(Scheme scheme,
                                const WorkloadParams &params,
                                unsigned stages);

/**
 * Evaluates a scheme at every processor count 1..max_processors in one
 * pass of the MVA recursion (see solveBusCurve()). Element i is
 * bitwise identical to evaluateBus(scheme, params, i + 1).
 */
std::vector<BusSolution>
evaluateBusCurve(Scheme scheme, const WorkloadParams &params,
                 unsigned max_processors);

/** @copydoc evaluateBusCurve */
std::vector<BusSolution>
evaluateBusCurve(Scheme scheme, const WorkloadParams &params,
                 unsigned max_processors, const BusCostModel &costs);

/**
 * Evaluates a scheme on networks of 2, 4, ..., 2^max_stages processors
 * in one batched fixed-point sweep (see solveNetworkCurve()). Element
 * i is bitwise identical to evaluateNetwork(scheme, params, i + 1).
 *
 * @throws std::invalid_argument for schemes that need a snooping bus.
 */
std::vector<NetworkSolution>
evaluateNetworkCurve(Scheme scheme, const WorkloadParams &params,
                     unsigned max_stages);

/**
 * Processing power of a scheme over a range of processor counts on a
 * bus (one BusSolution per count in [1, max_processors]).
 */
std::vector<BusSolution>
busPowerCurve(Scheme scheme, const WorkloadParams &params,
              unsigned max_processors);

/**
 * Processing power of a scheme on networks of 2, 4, ..., 2^max_stages
 * processors (one NetworkSolution per stage count).
 */
std::vector<NetworkSolution>
networkPowerCurve(Scheme scheme, const WorkloadParams &params,
                  unsigned max_stages);

} // namespace swcc

#endif // SWCC_CORE_SCHEME_EVALUATOR_HH
