/**
 * @file
 * System model: per-operation CPU and channel (bus/network) timing.
 *
 * Implements the paper's Table 1 (bus-based system) and Table 9
 * (n-stage circuit-switched multistage network). Costs are mutable so
 * that ablation studies can explore alternative machine timings.
 */

#ifndef SWCC_CORE_COST_MODEL_HH
#define SWCC_CORE_COST_MODEL_HH

#include <array>
#include <cstddef>

#include "core/operation.hh"
#include "core/types.hh"

namespace swcc
{

/**
 * Cost of one hardware operation.
 *
 * @c cpu is the total processor time for the operation in the absence of
 * contention; @c channel is the portion of that time during which the
 * shared medium (bus or network) is held. The paper assumes bus, network
 * switch, and CPU cycle times are equal.
 */
struct OpCost
{
    /** Total CPU cycles, including the channel-held portion. */
    Cycles cpu = 0.0;
    /** Cycles during which the shared channel is occupied. */
    Cycles channel = 0.0;
};

/**
 * Abstract per-operation cost table.
 *
 * Concrete tables exist for the bus machine (Table 1) and for an
 * n-stage multistage network (Table 9). Not every operation exists on
 * every medium: the Dragon-specific operations (write broadcast,
 * cache-supplied misses, cycle stealing) require a snooping bus.
 */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /**
     * Cost of one operation.
     *
     * @pre supports(op)
     */
    virtual OpCost cost(Operation op) const = 0;

    /** Whether this medium implements the operation at all. */
    virtual bool supports(Operation op) const = 0;
};

/**
 * Bus system model (paper Table 1).
 *
 * Derivation of the defaults, for a 4-word block and 1-word bus: a clean
 * miss needs 7 bus cycles (1 address + 2 memory access + 4 data words)
 * plus 3 CPU cycles of miss handling, 10 CPU cycles total. A dirty miss
 * adds the 4-cycle write-back of the victim. Read-through moves one word
 * (1 address + 2 memory + 1 data = 4 bus cycles); write-through posts
 * the word in a single bus cycle. A dirty flush writes 4 words back
 * using 4 bus cycles. Dragon's write broadcast posts one word (1 bus
 * cycle); cache-supplied misses save the memory-access cycle.
 */
class BusCostModel : public CostModel
{
  public:
    /** Builds the table with the paper's Table 1 values. */
    BusCostModel();

    OpCost cost(Operation op) const override;
    bool supports(Operation op) const override;

    /**
     * Overrides the cost of one operation (for ablations).
     *
     * @param op The operation to re-cost.
     * @param new_cost Replacement cost; channel must not exceed cpu.
     */
    void setCost(Operation op, OpCost new_cost);

  private:
    std::array<OpCost, kNumOperations> costs_;
};

/**
 * Multistage-network system model (paper Table 9).
 *
 * Costs are functions of the number of switch stages @c n (a system with
 * 2^n processors). A clean fetch costs 6 + 2n network cycles: n to set
 * up the path, 1 to send the address, 2 for memory access, n for the
 * first returning word and 3 for the remaining words of the 4-word
 * block. CPU time adds 3 cycles of miss handling. The Dragon-specific
 * operations are unsupported: a multistage network has no broadcast
 * medium to snoop.
 */
class NetworkCostModel : public CostModel
{
  public:
    /**
     * Builds the table for a network with @p stages switch stages.
     *
     * @param stages Number of 2x2 switch stages (>= 1); the machine has
     *               2^stages processors.
     */
    explicit NetworkCostModel(unsigned stages);

    OpCost cost(Operation op) const override;
    bool supports(Operation op) const override;

    /** Number of switch stages this table was built for. */
    unsigned stages() const { return stages_; }

    /**
     * Overrides one operation's cost (for ablations and derived
     * machines); marks the operation supported. Snooping operations
     * remain rejectable by never being set.
     */
    void setCost(Operation op, OpCost new_cost);

  private:
    unsigned stages_;
    std::array<OpCost, kNumOperations> costs_;
    std::array<bool, kNumOperations> supported_;
};

/**
 * Machine parameters for deriving cost tables from first principles,
 * generalising the paper's fixed 4-word-block, 2-cycle-memory machine.
 *
 * The Table 1 / Table 9 constants follow from the derivations in the
 * paper's Sections 2.1 and 6.1; these builders re-run those
 * derivations for arbitrary block sizes and memory latencies, enabling
 * block-size design studies the paper holds fixed.
 */
struct MachineParams
{
    /** Cache block size in (bus-width) words. */
    unsigned blockWords = 4;
    /** Main-memory access latency in cycles. */
    unsigned memoryCycles = 2;
    /** Processor cycles to detect and process a miss. */
    unsigned missHandlingCycles = 3;

    void validate() const;
};

/**
 * Builds a bus cost table for @p machine. With the defaults this
 * reproduces Table 1 exactly: e.g. a clean miss holds the bus for
 * 1 (address) + memoryCycles + blockWords cycles and adds
 * missHandlingCycles of processor time.
 */
BusCostModel makeBusCostModel(const MachineParams &machine);

/**
 * Builds an n-stage network cost table for @p machine; defaults
 * reproduce Table 9.
 */
NetworkCostModel makeNetworkCostModel(unsigned stages,
                                      const MachineParams &machine);

} // namespace swcc

#endif // SWCC_CORE_COST_MODEL_HH
