#include "core/workload.hh"

#include <stdexcept>
#include <string>

namespace swcc
{

namespace
{

void
checkProbability(double value, std::string_view name)
{
    if (!(value >= 0.0 && value <= 1.0)) {
        throw std::invalid_argument(
            std::string(name) + " must lie in [0, 1], got " +
            std::to_string(value));
    }
}

} // namespace

void
WorkloadParams::validate() const
{
    checkProbability(ls, "ls");
    checkProbability(msdat, "msdat");
    checkProbability(mains, "mains");
    checkProbability(md, "md");
    checkProbability(shd, "shd");
    checkProbability(wr, "wr");
    checkProbability(mdshd, "mdshd");
    checkProbability(oclean, "oclean");
    checkProbability(opres, "opres");
    if (!(apl >= 1.0)) {
        throw std::invalid_argument(
            "apl must be >= 1 (a shared block is referenced at least "
            "once before being flushed), got " + std::to_string(apl));
    }
    if (!(nshd >= 0.0)) {
        throw std::invalid_argument(
            "nshd must be non-negative, got " + std::to_string(nshd));
    }
}

std::string_view
paramName(ParamId id)
{
    switch (id) {
      case ParamId::Ls:     return "ls";
      case ParamId::Msdat:  return "msdat";
      case ParamId::Mains:  return "mains";
      case ParamId::Md:     return "md";
      case ParamId::Shd:    return "shd";
      case ParamId::Wr:     return "wr";
      case ParamId::InvApl: return "1/apl";
      case ParamId::Mdshd:  return "mdshd";
      case ParamId::Oclean: return "oclean";
      case ParamId::Opres:  return "opres";
      case ParamId::Nshd:   return "nshd";
    }
    return "unknown";
}

std::string_view
paramDescription(ParamId id)
{
    switch (id) {
      case ParamId::Ls:
        return "probability an instruction is a load or store";
      case ParamId::Msdat:
        return "miss rate for data";
      case ParamId::Mains:
        return "miss rate for instructions";
      case ParamId::Md:
        return "probability a miss replaces a dirty block";
      case ParamId::Shd:
        return "probability a load or store refers to shared data";
      case ParamId::Wr:
        return "probability a shared reference is a store";
      case ParamId::InvApl:
        return "inverse of references to a shared block before flush";
      case ParamId::Mdshd:
        return "probability a shared block is modified before flush";
      case ParamId::Oclean:
        return "on shared miss, probability block not dirty elsewhere";
      case ParamId::Opres:
        return "on shared reference, probability block present elsewhere";
      case ParamId::Nshd:
        return "on write-broadcast, number of other caches with block";
    }
    return "unknown";
}

double
getParam(const WorkloadParams &params, ParamId id)
{
    switch (id) {
      case ParamId::Ls:     return params.ls;
      case ParamId::Msdat:  return params.msdat;
      case ParamId::Mains:  return params.mains;
      case ParamId::Md:     return params.md;
      case ParamId::Shd:    return params.shd;
      case ParamId::Wr:     return params.wr;
      case ParamId::InvApl: return 1.0 / params.apl;
      case ParamId::Mdshd:  return params.mdshd;
      case ParamId::Oclean: return params.oclean;
      case ParamId::Opres:  return params.opres;
      case ParamId::Nshd:   return params.nshd;
    }
    throw std::invalid_argument("unknown ParamId");
}

void
setParam(WorkloadParams &params, ParamId id, double value)
{
    switch (id) {
      case ParamId::Ls:     params.ls = value; return;
      case ParamId::Msdat:  params.msdat = value; return;
      case ParamId::Mains:  params.mains = value; return;
      case ParamId::Md:     params.md = value; return;
      case ParamId::Shd:    params.shd = value; return;
      case ParamId::Wr:     params.wr = value; return;
      case ParamId::InvApl:
        if (value <= 0.0) {
            throw std::invalid_argument("1/apl must be positive");
        }
        params.apl = 1.0 / value;
        return;
      case ParamId::Mdshd:  params.mdshd = value; return;
      case ParamId::Oclean: params.oclean = value; return;
      case ParamId::Opres:  params.opres = value; return;
      case ParamId::Nshd:   params.nshd = value; return;
    }
    throw std::invalid_argument("unknown ParamId");
}

std::string_view
levelName(Level level)
{
    switch (level) {
      case Level::Low:    return "low";
      case Level::Middle: return "middle";
      case Level::High:   return "high";
    }
    return "unknown";
}

double
paramLevelValue(ParamId id, Level level)
{
    // Paper Table 7: {low, middle, high} per parameter.
    struct Range { double low, middle, high; };
    Range range{};
    switch (id) {
      case ParamId::Ls:     range = {0.2, 0.3, 0.4}; break;
      case ParamId::Msdat:  range = {0.004, 0.014, 0.024}; break;
      case ParamId::Mains:  range = {0.0014, 0.0022, 0.0034}; break;
      case ParamId::Md:     range = {0.14, 0.20, 0.50}; break;
      case ParamId::Shd:    range = {0.08, 0.25, 0.42}; break;
      case ParamId::Wr:     range = {0.10, 0.25, 0.40}; break;
      case ParamId::InvApl: range = {0.04, 0.13, 1.0}; break;
      case ParamId::Mdshd:  range = {0.0, 0.25, 0.5}; break;
      case ParamId::Oclean: range = {0.60, 0.84, 0.976}; break;
      case ParamId::Opres:  range = {0.63, 0.79, 0.94}; break;
      case ParamId::Nshd:   range = {1.0, 1.0, 7.0}; break;
    }
    switch (level) {
      case Level::Low:    return range.low;
      case Level::Middle: return range.middle;
      case Level::High:   return range.high;
    }
    throw std::invalid_argument("unknown Level");
}

WorkloadParams
paramsAtLevel(Level level)
{
    WorkloadParams params;
    for (ParamId id : kAllParams) {
        setParam(params, id, paramLevelValue(id, level));
    }
    return params;
}

WorkloadParams
middleParams()
{
    return paramsAtLevel(Level::Middle);
}

WorkloadParams
sharingScenario(Level level)
{
    WorkloadParams params = middleParams();
    setParam(params, ParamId::Ls, paramLevelValue(ParamId::Ls, level));
    setParam(params, ParamId::Shd, paramLevelValue(ParamId::Shd, level));
    return params;
}

} // namespace swcc
