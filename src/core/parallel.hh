/**
 * @file
 * Work-stealing thread pool and deterministic parallel loops.
 *
 * The experiment surface of this library — power curves, the Table 8
 * companion grids, the model-vs-simulation validation matrix — is
 * embarrassingly parallel: every cell is an independent evaluation.
 * parallelFor()/parallelMap() run those cells on a shared pool of
 * worker threads while preserving a strict determinism contract:
 *
 *  - results are written into pre-sized, index-addressed output slots,
 *    so the scheduler decides *when* a cell runs, never *what* it
 *    computes or *where* its result lands;
 *  - any randomised cell must seed its own generator from its index
 *    (see Rng::split), so ordering never leaks into numbers.
 *
 * Serial (`--threads 1`) and parallel (`--threads N`) runs therefore
 * produce bit-identical output. The pool size is chosen, in priority
 * order, from setThreadCount() (the CLI's `--threads`), the
 * SWCC_THREADS environment variable, and hardware_concurrency().
 *
 * Scheduling is dynamic: iterations live in a shared range and idle
 * lanes (the caller participates as one) steal the next chunk with an
 * atomic cursor, so uneven cell costs — e.g. fixed-point solves that
 * converge at different speeds — balance automatically.
 */

#ifndef SWCC_CORE_PARALLEL_HH
#define SWCC_CORE_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace swcc
{

/**
 * An error that must abort the whole job, not just the throwing task:
 * the pool stops stealing and rethrows it to the caller without any
 * retry. The campaign layer derives its injected "process kill" from
 * this to exercise interrupted-run recovery.
 */
struct FatalTaskError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * A task exceeded (or was injected to exceed) its time budget.
 * Retryable under TaskPolicy; counted separately from other failures.
 */
struct TaskTimeoutError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Per-task resilience policy for parallelForResilient().
 *
 * A failing task (any exception except FatalTaskError) is retried up
 * to maxRetries times with exponential backoff; a task still failing
 * after its last retry is *poisoned* — reported, counted, and skipped
 * — instead of sinking the campaign. timeoutMs is a cooperative
 * budget: an attempt measured over budget counts as a failure (its
 * result is discarded) so a pathological cell degrades into a
 * poisoned one instead of dominating the run.
 */
struct TaskPolicy
{
    /** Extra attempts after the first failure. */
    unsigned maxRetries = 2;
    /** Per-attempt wall-clock budget in ms; 0 disables the check. */
    std::uint64_t timeoutMs = 0;
    /** Delay before the first retry; doubles per retry. */
    std::uint64_t backoffBaseMs = 1;
    /** Upper bound on a single backoff delay. */
    std::uint64_t backoffCapMs = 100;
};

/** Final state of one index run under parallelForResilient(). */
enum class TaskOutcome : std::uint8_t
{
    Done,
    Poisoned,
};

/** Aggregate resilience activity of one parallelForResilient() call. */
struct ResilienceStats
{
    std::uint64_t retries = 0;  ///< Re-attempts after a failure.
    std::uint64_t poisoned = 0; ///< Indices that exhausted retries.
    std::uint64_t timeouts = 0; ///< Attempts over their time budget.
};

/**
 * parallelFor() with task-level retry, timeout, and poisoning.
 *
 * Runs fn(0) ... fn(n-1) across the pool under @p policy. fn may run
 * several times for the same index (each attempt from scratch); after
 * the final failure the index is marked TaskOutcome::Poisoned in
 * @p outcomes (resized to n when non-null) and the loop continues. A
 * FatalTaskError aborts the job immediately and propagates.
 *
 * Scheduling is wave-based: every index is attempted once across the
 * pool (in batches of @p grain consecutive indices, so cheap cells
 * amortise the steal overhead), then failed indices are re-attempted
 * in later waves once their backoff deadline passes. Backoff is slept
 * out on the *calling* thread between waves — a retrying cell never
 * parks a pool lane, so a retry storm cannot serialise the healthy
 * part of the campaign.
 *
 * @param grain Consecutive indices per scheduled task (min 1). The
 *        result is independent of grain; only scheduling granularity
 *        changes.
 */
ResilienceStats
parallelForResilient(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     const TaskPolicy &policy,
                     std::vector<TaskOutcome> *outcomes = nullptr,
                     std::size_t grain = 1);

/**
 * Activity counters for one pool lane. Lane 0 is the participating
 * caller; lanes 1..N-1 are worker threads.
 */
struct WorkerStats
{
    std::uint64_t tasksExecuted = 0; ///< Indices run by this lane.
    std::uint64_t chunksStolen = 0;  ///< Cursor claims that won work.
    std::uint64_t idleNs = 0;        ///< Time blocked waiting for work.
};

/** A consistent snapshot of a pool's activity since construction. */
struct PoolStats
{
    std::vector<WorkerStats> lanes;
    std::uint64_t jobs = 0; ///< forEach() calls that ran work.

    /** Sums every lane. */
    WorkerStats totals() const;
};

/**
 * A persistent pool of worker threads executing index-space jobs.
 *
 * One job runs at a time; forEach() blocks until the job completes and
 * the calling thread works alongside the pool's threads. A pool of
 * size 1 has no worker threads and runs everything inline.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total lanes, including the caller; the pool spawns
     *        threads - 1 workers. 0 is treated as 1 (serial).
     */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers; pending wake-ups drain cleanly. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (worker threads + the participating caller). */
    unsigned
    size() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Runs fn(0) ... fn(n-1), in unspecified order, across the pool.
     *
     * Blocks until every index has finished. If any invocation throws,
     * remaining indices are abandoned and the first exception is
     * rethrown on the calling thread; the pool stays usable.
     *
     * Tiny jobs never pay the wake/steal machinery: the caller first
     * runs a serial prefix inline and only dispatches the remainder to
     * the workers once ~1 ms of work has accumulated, so a
     * sub-millisecond job (e.g. the Table 8 grid at 0.4 ms) completes
     * exactly like the serial path, minus a clock read per index.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Per-lane activity since construction. Safe to call while a job
     * runs (counters are relaxed atomics); exact once the pool is
     * quiescent. Counting is always on — each increment touches only
     * the owning lane's cache line, so it is contention-free.
     */
    PoolStats stats() const;

  private:
    /** One lane's counters, padded onto a private cache line. */
    struct alignas(64) LaneCounters
    {
        std::atomic<std::uint64_t> tasks{0};
        std::atomic<std::uint64_t> chunks{0};
        std::atomic<std::uint64_t> idleNs{0};
    };

    void workerLoop(unsigned lane);

    /** Steals and runs chunks of the current job until it is drained. */
    void drainJob(unsigned lane,
                  const std::function<void(std::size_t)> &fn);

    std::vector<std::thread> workers_;
    std::unique_ptr<LaneCounters[]> laneCounters_;
    std::atomic<std::uint64_t> jobs_{0};

    /** Serialises whole jobs: one forEach() owns the pool at a time. */
    std::mutex jobMutex_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;

    // In-flight job; fields below are written under mutex_ before the
    // workers observe the jobSeq_ bump (also under mutex_), which
    // establishes the necessary happens-before edges.
    const std::function<void(std::size_t)> *jobFn_ = nullptr;
    std::size_t jobSize_ = 0;
    std::size_t jobChunk_ = 1;
    std::uint64_t jobSeq_ = 0;
    unsigned workersBusy_ = 0;
    bool stop_ = false;

    /** Next unclaimed iteration of the current job. */
    std::atomic<std::size_t> cursor_{0};
    /** Set on the first exception; stops further stealing. */
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;
};

/** hardware_concurrency(), never 0. */
unsigned hardwareThreads();

/**
 * Overrides the lane count used by parallelFor()/parallelMap()
 * (0 restores the default: SWCC_THREADS, else hardware_concurrency()).
 */
void setThreadCount(unsigned threads);

/** The lane count parallelFor() will use right now. */
unsigned configuredThreads();

/**
 * The process-wide pool, sized to configuredThreads(). Rebuilt lazily
 * after setThreadCount() changes the size.
 */
ThreadPool &globalPool();

/**
 * Publishes the global pool's PoolStats to the obs metrics registry
 * as `pool.*` gauges (lanes, jobs, tasks, chunks, idle seconds).
 * Idempotent; a no-op when no pool has been created. Registered as an
 * obs finalize hook, so `--metrics-out` dumps include the pool's
 * final numbers automatically.
 */
void recordPoolMetrics();

/**
 * Runs fn(0) ... fn(n-1) on the global pool.
 *
 * Runs inline (exactly serial) when n <= 1, when one lane is
 * configured, or when called from inside another parallel loop —
 * nested parallelism never deadlocks, it just flattens.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn);

/**
 * Parallel map into a pre-sized, index-addressed vector: slot i holds
 * fn(i). The return value is bit-identical for any thread count.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn &, std::size_t>>>
{
    std::vector<std::decay_t<std::invoke_result_t<Fn &, std::size_t>>>
        out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * Two-dimensional parallelMap: slot row * cols + col of the returned
 * row-major vector holds fn(row, col). All cells share one flattened
 * index space, so a grid of uneven rows (e.g. a cache-size sweep whose
 * larger configurations simulate more slowly) still load-balances
 * across the pool, and the output layout — hence the result — is
 * independent of the thread count.
 */
template <typename Fn>
auto
parallelMapGrid(std::size_t rows, std::size_t cols, Fn &&fn)
    -> std::vector<std::decay_t<
        std::invoke_result_t<Fn &, std::size_t, std::size_t>>>
{
    std::vector<std::decay_t<
        std::invoke_result_t<Fn &, std::size_t, std::size_t>>>
        out(rows * cols);
    parallelFor(rows * cols, [&](std::size_t i) {
        out[i] = fn(i / cols, i % cols);
    });
    return out;
}

} // namespace swcc

#endif // SWCC_CORE_PARALLEL_HH
