#include "core/simd_kernels.hh"

#include <cstdint>
#include <cstring>

// This translation unit is compiled with the vector ISA enabled
// (-mavx2 on x86-64) and -ffp-contract=off; nothing here may run
// unless simd::activeIsa() reported vector support. The scalar tails
// below are compiled with the same flags, so they stay bitwise
// faithful to the vector lanes and to the plain scalar solvers.

#if defined(__x86_64__) && defined(__AVX2__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace swcc::simd
{

namespace
{

/** Branchless bit-exact select: @p a when @p take_a, else @p b. */
inline double
selectDouble(bool take_a, double a, double b)
{
    std::uint64_t ua;
    std::uint64_t ub;
    std::memcpy(&ua, &a, sizeof ua);
    std::memcpy(&ub, &b, sizeof ub);
    const std::uint64_t keep = take_a ? ~std::uint64_t{0} : 0;
    const std::uint64_t r = (ua & keep) | (ub & ~keep);
    double out;
    std::memcpy(&out, &r, sizeof out);
    return out;
}

/**
 * Scalar lane of the bisection sweep; the reference the vector lanes
 * must match bit for bit (and the remainder-tail implementation).
 */
inline void
bisectLaneScalar(double *lo, double *hi, double demand, double stagesd,
                 unsigned iters)
{
    double lo_r = *lo;
    double hi_r = *hi;
    for (unsigned it = 0; it < iters; ++it) {
        const double mid = 0.5 * (lo_r + hi_r);
        double m = 1.0 - mid;
        for (double s = 0.0; s < stagesd; s += 1.0) {
            const double t = 1.0 - m * 0.5;
            m = 1.0 - t * t;
        }
        const bool gt = m / demand - mid > 0.0;
        lo_r = selectDouble(gt, mid, lo_r);
        hi_r = selectDouble(gt, hi_r, mid);
    }
    *lo = lo_r;
    *hi = hi_r;
}

inline void
busDeriveLaneScalar(double response, double throughput, double count,
                    double service, double cpu, double *waiting,
                    double *bus_util, double *proc_util, double *power)
{
    const double w = response - service;
    *waiting = w;
    *bus_util = throughput * service;
    const double pu = 1.0 / (cpu + w);
    *proc_util = pu;
    *power = count * pu;
}

#if defined(__x86_64__) && defined(__AVX2__)

/**
 * One bisection step for a 4-lane group. The stage recursion runs to
 * the deepest lane in the group; shallower lanes are masked out once
 * their own count is done (a no-mask fast path serves uniform groups),
 * so each lane sees exactly its scalar sequence of steps.
 */
inline void
bisectStepAvx2(__m256d &vlo, __m256d &vhi, __m256d vdem, __m256d vstg,
               double max_stages, bool uniform)
{
    const __m256d vhalf = _mm256_set1_pd(0.5);
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d vmid = _mm256_mul_pd(vhalf, _mm256_add_pd(vlo, vhi));
    __m256d vm = _mm256_sub_pd(vone, vmid);
    if (uniform) {
        for (double s = 0.0; s < max_stages; s += 1.0) {
            const __m256d vt =
                _mm256_sub_pd(vone, _mm256_mul_pd(vm, vhalf));
            vm = _mm256_sub_pd(vone, _mm256_mul_pd(vt, vt));
        }
    } else {
        for (double s = 0.0; s < max_stages; s += 1.0) {
            const __m256d vt =
                _mm256_sub_pd(vone, _mm256_mul_pd(vm, vhalf));
            const __m256d vnext =
                _mm256_sub_pd(vone, _mm256_mul_pd(vt, vt));
            const __m256d vlive =
                _mm256_cmp_pd(_mm256_set1_pd(s), vstg, _CMP_LT_OQ);
            vm = _mm256_blendv_pd(vm, vnext, vlive);
        }
    }
    const __m256d vresid =
        _mm256_sub_pd(_mm256_div_pd(vm, vdem), vmid);
    const __m256d vgt =
        _mm256_cmp_pd(vresid, _mm256_setzero_pd(), _CMP_GT_OQ);
    vlo = _mm256_blendv_pd(vlo, vmid, vgt);
    vhi = _mm256_blendv_pd(vmid, vhi, vgt);
}

#endif // __AVX2__

} // namespace

void
bisectSweepVector(double *lo, double *hi, const double *demand,
                  const double *stagesd, unsigned lanes, unsigned iters)
{
#if defined(__x86_64__) && defined(__AVX2__)
    unsigned l = 0;
    // Four groups advance together, iteration-outer, so four
    // independent stage-recursion chains are in flight at once. One
    // group alone is latency-bound: each bisection step is a serial
    // mul/sub chain, and back-to-back iterations of a single group
    // leave the FP ports mostly idle.
    for (; l + 16 <= lanes; l += 16) {
        __m256d vlo[4];
        __m256d vhi[4];
        __m256d vdem[4];
        __m256d vstg[4];
        double mx[4];
        bool uni[4];
        for (unsigned g = 0; g < 4; ++g) {
            const unsigned base = l + 4 * g;
            mx[g] = stagesd[base];
            uni[g] = true;
            for (unsigned i = 1; i < 4; ++i) {
                uni[g] = uni[g] && stagesd[base + i] == stagesd[base];
                if (stagesd[base + i] > mx[g]) {
                    mx[g] = stagesd[base + i];
                }
            }
            vlo[g] = _mm256_loadu_pd(lo + base);
            vhi[g] = _mm256_loadu_pd(hi + base);
            vdem[g] = _mm256_loadu_pd(demand + base);
            vstg[g] = _mm256_loadu_pd(stagesd + base);
        }
        for (unsigned it = 0; it < iters; ++it) {
            for (unsigned g = 0; g < 4; ++g) {
                bisectStepAvx2(vlo[g], vhi[g], vdem[g], vstg[g],
                               mx[g], uni[g]);
            }
        }
        for (unsigned g = 0; g < 4; ++g) {
            _mm256_storeu_pd(lo + l + 4 * g, vlo[g]);
            _mm256_storeu_pd(hi + l + 4 * g, vhi[g]);
        }
    }
    for (; l + 4 <= lanes; l += 4) {
        double max_stages = stagesd[l];
        bool uniform = true;
        for (unsigned i = 1; i < 4; ++i) {
            uniform = uniform && stagesd[l + i] == stagesd[l];
            if (stagesd[l + i] > max_stages) {
                max_stages = stagesd[l + i];
            }
        }
        __m256d vlo = _mm256_loadu_pd(lo + l);
        __m256d vhi = _mm256_loadu_pd(hi + l);
        const __m256d vdem = _mm256_loadu_pd(demand + l);
        const __m256d vstg = _mm256_loadu_pd(stagesd + l);
        for (unsigned it = 0; it < iters; ++it) {
            bisectStepAvx2(vlo, vhi, vdem, vstg, max_stages, uniform);
        }
        _mm256_storeu_pd(lo + l, vlo);
        _mm256_storeu_pd(hi + l, vhi);
    }
    for (; l < lanes; ++l) {
        bisectLaneScalar(lo + l, hi + l, demand[l], stagesd[l], iters);
    }
#elif defined(__aarch64__)
    const float64x2_t vhalf = vdupq_n_f64(0.5);
    const float64x2_t vone = vdupq_n_f64(1.0);
    const float64x2_t vzero = vdupq_n_f64(0.0);
    unsigned l = 0;
    for (; l + 2 <= lanes; l += 2) {
        double max_stages = stagesd[l];
        if (stagesd[l + 1] > max_stages) {
            max_stages = stagesd[l + 1];
        }
        float64x2_t vlo = vld1q_f64(lo + l);
        float64x2_t vhi = vld1q_f64(hi + l);
        const float64x2_t vdem = vld1q_f64(demand + l);
        const float64x2_t vstg = vld1q_f64(stagesd + l);
        for (unsigned it = 0; it < iters; ++it) {
            const float64x2_t vmid =
                vmulq_f64(vhalf, vaddq_f64(vlo, vhi));
            float64x2_t vm = vsubq_f64(vone, vmid);
            for (double s = 0.0; s < max_stages; s += 1.0) {
                const float64x2_t vt =
                    vsubq_f64(vone, vmulq_f64(vm, vhalf));
                const float64x2_t vnext =
                    vsubq_f64(vone, vmulq_f64(vt, vt));
                const uint64x2_t vlive =
                    vcltq_f64(vdupq_n_f64(s), vstg);
                vm = vbslq_f64(vlive, vnext, vm);
            }
            const float64x2_t vresid =
                vsubq_f64(vdivq_f64(vm, vdem), vmid);
            const uint64x2_t vgt = vcgtq_f64(vresid, vzero);
            vlo = vbslq_f64(vgt, vmid, vlo);
            vhi = vbslq_f64(vgt, vhi, vmid);
        }
        vst1q_f64(lo + l, vlo);
        vst1q_f64(hi + l, vhi);
    }
    for (; l < lanes; ++l) {
        bisectLaneScalar(lo + l, hi + l, demand[l], stagesd[l], iters);
    }
#else
    // Unreachable behind dispatch (activeIsa() is Scalar here), but
    // keep a correct definition so the symbol always links.
    for (unsigned l = 0; l < lanes; ++l) {
        bisectLaneScalar(lo + l, hi + l, demand[l], stagesd[l], iters);
    }
#endif
}

void
busDeriveVector(const double *responses, const double *throughputs,
                double service, double cpu, std::size_t base,
                std::size_t n, double *waiting, double *bus_util,
                double *proc_util, double *power)
{
#if defined(__x86_64__) && defined(__AVX2__)
    const __m256d vsvc = _mm256_set1_pd(service);
    const __m256d vcpu = _mm256_set1_pd(cpu);
    const __m256d vone = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vcnt =
            _mm256_set_pd(static_cast<double>(base + i + 4),
                          static_cast<double>(base + i + 3),
                          static_cast<double>(base + i + 2),
                          static_cast<double>(base + i + 1));
        const __m256d vresp = _mm256_loadu_pd(responses + i);
        const __m256d vthr = _mm256_loadu_pd(throughputs + i);
        const __m256d vw = _mm256_sub_pd(vresp, vsvc);
        const __m256d vbu = _mm256_mul_pd(vthr, vsvc);
        const __m256d vpu =
            _mm256_div_pd(vone, _mm256_add_pd(vcpu, vw));
        const __m256d vpw = _mm256_mul_pd(vcnt, vpu);
        _mm256_storeu_pd(waiting + i, vw);
        _mm256_storeu_pd(bus_util + i, vbu);
        _mm256_storeu_pd(proc_util + i, vpu);
        _mm256_storeu_pd(power + i, vpw);
    }
    for (; i < n; ++i) {
        busDeriveLaneScalar(responses[i], throughputs[i],
                            static_cast<double>(base + i + 1), service,
                            cpu, waiting + i, bus_util + i,
                            proc_util + i, power + i);
    }
#elif defined(__aarch64__)
    const float64x2_t vsvc = vdupq_n_f64(service);
    const float64x2_t vcpu = vdupq_n_f64(cpu);
    const float64x2_t vone = vdupq_n_f64(1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const double cnt[2] = {static_cast<double>(base + i + 1),
                               static_cast<double>(base + i + 2)};
        const float64x2_t vcnt = vld1q_f64(cnt);
        const float64x2_t vresp = vld1q_f64(responses + i);
        const float64x2_t vthr = vld1q_f64(throughputs + i);
        const float64x2_t vw = vsubq_f64(vresp, vsvc);
        const float64x2_t vbu = vmulq_f64(vthr, vsvc);
        const float64x2_t vpu =
            vdivq_f64(vone, vaddq_f64(vcpu, vw));
        const float64x2_t vpw = vmulq_f64(vcnt, vpu);
        vst1q_f64(waiting + i, vw);
        vst1q_f64(bus_util + i, vbu);
        vst1q_f64(proc_util + i, vpu);
        vst1q_f64(power + i, vpw);
    }
    for (; i < n; ++i) {
        busDeriveLaneScalar(responses[i], throughputs[i],
                            static_cast<double>(base + i + 1), service,
                            cpu, waiting + i, bus_util + i,
                            proc_util + i, power + i);
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
        busDeriveLaneScalar(responses[i], throughputs[i],
                            static_cast<double>(base + i + 1), service,
                            cpu, waiting + i, bus_util + i,
                            proc_util + i, power + i);
    }
#endif
}

} // namespace swcc::simd
