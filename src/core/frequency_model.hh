/**
 * @file
 * Workload model: per-instruction operation frequencies for each
 * coherence scheme (paper Tables 3-6).
 */

#ifndef SWCC_CORE_FREQUENCY_MODEL_HH
#define SWCC_CORE_FREQUENCY_MODEL_HH

#include <array>

#include "core/operation.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/**
 * Expected number of occurrences of each operation per (non-flush)
 * instruction.
 *
 * Frequencies are expectations, not probabilities: they may exceed one
 * (e.g. Dragon's cycle stealing with nshd > 1) and several may occur
 * for the same instruction.
 */
class FrequencyVector
{
  public:
    /** Frequency of one operation. */
    double
    of(Operation op) const
    {
        return freqs_[operationIndex(op)];
    }

    /** Sets the frequency of one operation. */
    void
    set(Operation op, double freq)
    {
        freqs_[operationIndex(op)] = freq;
    }

    /** Adds to the frequency of one operation. */
    void
    add(Operation op, double freq)
    {
        freqs_[operationIndex(op)] += freq;
    }

    /** Sum of all miss frequencies (memory- and cache-supplied). */
    double totalMisses() const;

    /** Sum of all frequencies that occupy the shared channel. */
    double totalChannelOperations() const;

  private:
    std::array<double, kNumOperations> freqs_{};
};

/**
 * Operation frequencies for @p scheme under workload @p params.
 *
 * Implements the paper's Tables 3-6 exactly, including the three
 * Software-Flush effects described in Section 2.2.3: the flush
 * instruction itself (dirty with probability mdshd), the refetch miss
 * that re-loads each flushed block (treated as a clean miss because the
 * flush just freed the block's frame), and the inflation of instruction
 * fetches (and hence instruction misses) by the inserted flush
 * instructions. Frequencies are reported per *non-flush* instruction so
 * that flush overhead is amortised over useful instructions.
 *
 * @throws std::invalid_argument if @p params fails validation.
 */
FrequencyVector operationFrequencies(Scheme scheme,
                                     const WorkloadParams &params);

/**
 * Frequency of flush instructions per non-flush instruction in the
 * Software-Flush scheme: ls * shd / apl.
 */
double flushFrequency(const WorkloadParams &params);

} // namespace swcc

#endif // SWCC_CORE_FREQUENCY_MODEL_HH
