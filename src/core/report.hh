/**
 * @file
 * Reporting helpers: aligned text tables, CSV emission, and ASCII
 * charts for rendering the paper's figures in a terminal.
 */

#ifndef SWCC_CORE_REPORT_HH
#define SWCC_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.hh"

namespace swcc
{

/**
 * A simple fixed-layout text table.
 *
 * Build with column headers, add rows of cells, then print; column
 * widths are computed from content. Numeric cells should be formatted
 * by the caller (see @ref formatNumber).
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /**
     * Appends one row.
     *
     * @throws std::invalid_argument if the cell count mismatches the
     *         header count.
     */
    void addRow(std::vector<std::string> cells);

    /** Renders the table with a header underline. */
    void print(std::ostream &os) const;

    /** Renders the table as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Formats a double with @p precision significant decimals, trimming a
 * fixed representation ("3.1400" -> "3.14", "5.000" -> "5").
 */
std::string formatNumber(double value, int precision = 4);

/**
 * Writes a table as CSV under @p directory (created if missing),
 * returning the full path. Used by the bench binaries to leave
 * plottable data (bench_results/<name>.csv) beside their stdout
 * reports.
 *
 * @throws std::runtime_error if the file cannot be written.
 */
std::string exportCsv(const TextTable &table, const std::string &name,
                      const std::string &directory = "bench_results");

/**
 * Renders data series as a scatter ASCII chart.
 *
 * Each series gets a marker character (a, b, c, ... or the first letter
 * of its label when unambiguous); a legend is printed underneath.
 * Intended for eyeballing the reproduced paper figures from the bench
 * binaries; exact values accompany the charts as tables.
 */
class AsciiChart
{
  public:
    /**
     * @param width Plot area width in characters.
     * @param height Plot area height in characters.
     */
    AsciiChart(unsigned width = 64, unsigned height = 20);

    /** Adds one curve. */
    void addSeries(const Series &series);

    /** Optional axis titles. */
    void setAxisTitles(std::string x_title, std::string y_title);

    /** Forces the y range (default: fit to data, starting at 0). */
    void setYRange(double lo, double hi);

    /** Renders the chart and legend. */
    void print(std::ostream &os) const;

  private:
    unsigned width_;
    unsigned height_;
    std::vector<Series> series_;
    std::string xTitle_;
    std::string yTitle_;
    bool hasYRange_ = false;
    double yLo_ = 0.0;
    double yHi_ = 0.0;
};

} // namespace swcc

#endif // SWCC_CORE_REPORT_HH
