#include "core/cost_model.hh"

#include <stdexcept>
#include <string>

namespace swcc
{

namespace
{

void
checkCost(Operation op, OpCost cost)
{
    if (cost.cpu < 0.0 || cost.channel < 0.0) {
        throw std::invalid_argument(
            "negative cost for operation " + std::string(operationName(op)));
    }
    if (cost.channel > cost.cpu) {
        throw std::invalid_argument(
            "channel time exceeds CPU time for operation " +
            std::string(operationName(op)));
    }
}

} // namespace

BusCostModel::BusCostModel()
{
    // Paper Table 1: {CPU cycles, bus cycles}.
    costs_[operationIndex(Operation::InstrExec)]      = {1.0, 0.0};
    costs_[operationIndex(Operation::CleanMissMem)]   = {10.0, 7.0};
    costs_[operationIndex(Operation::DirtyMissMem)]   = {14.0, 11.0};
    costs_[operationIndex(Operation::ReadThrough)]    = {5.0, 4.0};
    costs_[operationIndex(Operation::WriteThrough)]   = {2.0, 1.0};
    costs_[operationIndex(Operation::CleanFlush)]     = {1.0, 0.0};
    costs_[operationIndex(Operation::DirtyFlush)]     = {6.0, 4.0};
    costs_[operationIndex(Operation::WriteBroadcast)] = {2.0, 1.0};
    costs_[operationIndex(Operation::CleanMissCache)] = {9.0, 6.0};
    costs_[operationIndex(Operation::DirtyMissCache)] = {13.0, 10.0};
    costs_[operationIndex(Operation::CycleSteal)]     = {1.0, 0.0};
}

OpCost
BusCostModel::cost(Operation op) const
{
    return costs_[operationIndex(op)];
}

bool
BusCostModel::supports(Operation) const
{
    return true;
}

void
BusCostModel::setCost(Operation op, OpCost new_cost)
{
    checkCost(op, new_cost);
    costs_[operationIndex(op)] = new_cost;
}

NetworkCostModel::NetworkCostModel(unsigned stages)
    : stages_(stages)
{
    if (stages < 1) {
        throw std::invalid_argument(
            "a multistage network needs at least one switch stage");
    }

    const double two_n = 2.0 * static_cast<double>(stages);

    supported_.fill(false);
    costs_.fill(OpCost{});

    auto set = [this](Operation op, Cycles cpu, Cycles net) {
        costs_[operationIndex(op)] = {cpu, net};
        supported_[operationIndex(op)] = true;
    };

    // Paper Table 9: {CPU cycles, network cycles} for an n-stage network.
    set(Operation::InstrExec, 1.0, 0.0);
    set(Operation::CleanMissMem, 9.0 + two_n, 6.0 + two_n);
    set(Operation::DirtyMissMem, 12.0 + two_n, 9.0 + two_n);
    set(Operation::CleanFlush, 1.0, 0.0);
    set(Operation::DirtyFlush, 7.0 + two_n, 5.0 + two_n);
    set(Operation::WriteThrough, 3.0 + two_n, 2.0 + two_n);
    set(Operation::ReadThrough, 4.0 + two_n, 3.0 + two_n);
}

OpCost
NetworkCostModel::cost(Operation op) const
{
    if (!supported_[operationIndex(op)]) {
        throw std::invalid_argument(
            std::string(operationName(op)) +
            " is not defined for a multistage network (snooping "
            "operations require a broadcast bus)");
    }
    return costs_[operationIndex(op)];
}

bool
NetworkCostModel::supports(Operation op) const
{
    return supported_[operationIndex(op)];
}

void
NetworkCostModel::setCost(Operation op, OpCost new_cost)
{
    checkCost(op, new_cost);
    costs_[operationIndex(op)] = new_cost;
    supported_[operationIndex(op)] = true;
}

void
MachineParams::validate() const
{
    if (blockWords == 0) {
        throw std::invalid_argument("block must hold at least one word");
    }
    if (memoryCycles == 0) {
        throw std::invalid_argument(
            "memory access takes at least one cycle");
    }
}

BusCostModel
makeBusCostModel(const MachineParams &machine)
{
    machine.validate();
    const double words = machine.blockWords;
    const double mem = machine.memoryCycles;
    const double handle = machine.missHandlingCycles;

    BusCostModel costs;
    auto set = [&costs](Operation op, double bus, double extra_cpu) {
        costs.setCost(op, {bus + extra_cpu, bus});
    };
    // Derivations per the paper's Section 2.1. Misses move the address
    // plus the block; the dirty variants append the victim block; the
    // cache-to-cache variants shave one cycle of memory access.
    set(Operation::CleanMissMem, 1.0 + mem + words, handle);
    set(Operation::DirtyMissMem, 1.0 + mem + 2.0 * words, handle);
    set(Operation::ReadThrough, 2.0 + mem, 1.0);
    set(Operation::WriteThrough, 1.0, 1.0);
    set(Operation::DirtyFlush, words, 2.0);
    set(Operation::WriteBroadcast, 1.0, 1.0);
    set(Operation::CleanMissCache, mem + words, handle);
    set(Operation::DirtyMissCache, mem + 2.0 * words, handle);
    // InstrExec, CleanFlush and CycleSteal keep their 1-cycle costs.
    return costs;
}

NetworkCostModel
makeNetworkCostModel(unsigned stages, const MachineParams &machine)
{
    machine.validate();
    NetworkCostModel costs(stages);
    const double two_n = 2.0 * static_cast<double>(stages);
    const double words = machine.blockWords;
    const double mem = machine.memoryCycles;
    const double handle = machine.missHandlingCycles;

    // Per Section 6.1: n cycles of path setup each way, one address
    // cycle, the memory access (overlapped with the victim transfer on
    // dirty fetches), and pipelined word transfers.
    const double clean = two_n + 1.0 + mem + (words - 1.0);
    const double dirty = two_n + 1.0 + mem + 2.0 * (words - 1.0);
    costs.setCost(Operation::CleanMissMem, {clean + handle, clean});
    costs.setCost(Operation::DirtyMissMem, {dirty + handle, dirty});
    const double flush = two_n + 1.0 + words;
    costs.setCost(Operation::DirtyFlush, {flush + 2.0, flush});
    costs.setCost(Operation::WriteThrough,
                  {two_n + 3.0, two_n + 2.0});
    costs.setCost(Operation::ReadThrough,
                  {two_n + 2.0 + mem, two_n + 1.0 + mem});
    return costs;
}

} // namespace swcc
