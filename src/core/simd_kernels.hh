/**
 * @file
 * Vector solver kernels (AVX2 on x86-64, NEON on AArch64).
 *
 * These functions live in a translation unit compiled with the vector
 * ISA enabled (and FMA contraction disabled); callers must gate every
 * call on simd::activeIsa() != Isa::Scalar, which guarantees the CPU
 * supports the instructions the kernel was compiled to.
 *
 * Each kernel performs exactly the elementwise IEEE-754 operations of
 * its scalar counterpart, in the same order, so results are bitwise
 * identical lane for lane.
 */

#ifndef SWCC_CORE_SIMD_KERNELS_HH
#define SWCC_CORE_SIMD_KERNELS_HH

#include <cstddef>

namespace swcc::simd
{

/**
 * Runs @p iters bisection iterations over @p lanes cells of the
 * network fixed-point sweep. Per lane l, per iteration:
 *
 *   mid = 0.5 * (lo[l] + hi[l])
 *   m   = 1 - mid, pushed through stagesd[l] Patel stage steps
 *   if (m / demand[l] - mid > 0) lo[l] = mid; else hi[l] = mid;
 *
 * Brackets stay in vector registers across all @p iters iterations
 * (the caller knows each cell's convergence depth a priori — the
 * bracket width halves exactly every step — so no per-iteration
 * convergence checks are needed).
 *
 * Stage counts are carried as doubles so lanes with fewer stages can
 * be masked out of the shared recursion (the blend discards the extra
 * steps, preserving the per-lane scalar sequence bit for bit).
 * Comparisons are ordered-quiet, so a NaN residual routes to the
 * else-branch exactly like the scalar `> 0.0` test.
 *
 * @p lanes need not be a vector multiple; the remainder runs through
 * an in-kernel scalar tail with identical arithmetic.
 */
void bisectSweepVector(double *lo, double *hi, const double *demand,
                       const double *stagesd, unsigned lanes,
                       unsigned iters);

/**
 * Bus-curve derive pass over a chunk of @p n populations starting at
 * global index @p base (population = base + i + 1). Per index i:
 *
 *   waiting[i]   = responses[i] - service
 *   bus_util[i]  = throughputs[i] * service
 *   proc_util[i] = 1 / (cpu + waiting[i])
 *   power[i]     = (double)(base + i + 1) * proc_util[i]
 *
 * The chunked interface lets the caller use small stack output
 * buffers instead of heap-allocating whole-curve arrays.
 */
void busDeriveVector(const double *responses, const double *throughputs,
                     double service, double cpu, std::size_t base,
                     std::size_t n, double *waiting, double *bus_util,
                     double *proc_util, double *power);

} // namespace swcc::simd

#endif // SWCC_CORE_SIMD_KERNELS_HH
