#include "core/solver_cache.hh"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign/cell_hash.hh"
#include "core/cost_model.hh"
#include "core/obs/metrics.hh"
#include "core/obs/obs.hh"
#include "core/workload.hh"

namespace swcc
{

namespace
{

/** Seeds of the two independent FNV states (offset basis, variant). */
constexpr std::uint64_t kSeedLo = 0xcbf29ce484222325ull;
constexpr std::uint64_t kSeedHi = 0x84222325cbf29ce4ull;

/** Field separator byte outside any hashed payload's alphabet. */
constexpr unsigned char kSeparator = 0xff;

/**
 * Canonical IEEE-754 bits of a double: -0.0 folds to 0.0 and every
 * NaN to one quiet pattern, matching cell_hash's convention.
 */
std::uint64_t
canonicalBits(double value)
{
    if (value == 0.0) {
        value = 0.0; // -0.0 == 0.0 folds the sign away.
    }
    if (value != value) {
        return 0x7ff8000000000000ull;
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

/** -1 unknown, 0 off, 1 on; setSolverCacheEnabled writes 0/1. */
std::atomic<int> cache_enabled{-1};

std::atomic<std::uint64_t> cache_hits{0};
std::atomic<std::uint64_t> cache_misses{0};
std::atomic<std::uint64_t> cache_evictions{0};

/**
 * Registers publishSolverCacheMetrics() as a finalize hook, lazily
 * from the counting paths (a cross-TU static initializer would race
 * obs's own globals). Idempotent via the function-local static.
 */
void
ensureMetricsHook()
{
    [[maybe_unused]] static const bool registered = [] {
        obs::addFinalizeHook(publishSolverCacheMetrics);
        return true;
    }();
}

std::mutex clearers_mutex;
std::vector<void (*)()> &
clearers()
{
    static std::vector<void (*)()> list;
    return list;
}

bool
envDisablesCache()
{
    const char *env = std::getenv("SWCC_SOLVER_CACHE");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    std::string value(env);
    for (char &c : value) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return value == "off" || value == "0" || value == "false" ||
        value == "no";
}

} // namespace

SolverKeyBuilder::SolverKeyBuilder(std::string_view domain)
    : lo_(kSeedLo), hi_(kSeedHi)
{
    add(domain);
}

SolverKeyBuilder &
SolverKeyBuilder::add(std::string_view field)
{
    const unsigned char tag = 's';
    mixBytes(&tag, 1);
    mixBytes(field.data(), field.size());
    mixSeparator();
    return *this;
}

SolverKeyBuilder &
SolverKeyBuilder::add(double value)
{
    const unsigned char tag = 'd';
    const std::uint64_t bits = canonicalBits(value);
    mixBytes(&tag, 1);
    mixBytes(&bits, sizeof bits);
    mixSeparator();
    return *this;
}

SolverKeyBuilder &
SolverKeyBuilder::add(std::uint64_t value)
{
    const unsigned char tag = 'u';
    mixBytes(&tag, 1);
    mixBytes(&value, sizeof value);
    mixSeparator();
    return *this;
}

SolverKeyBuilder &
SolverKeyBuilder::add(const WorkloadParams &params)
{
    for (ParamId id : kAllParams) {
        add(getParam(params, id));
    }
    return *this;
}

SolverKeyBuilder &
SolverKeyBuilder::add(const CostModel &costs)
{
    for (Operation op : kAllOperations) {
        if (!costs.supports(op)) {
            add(std::uint64_t{0});
            continue;
        }
        const OpCost cost = costs.cost(op);
        add(std::uint64_t{1}).add(cost.cpu).add(cost.channel);
    }
    return *this;
}

void
SolverKeyBuilder::mixBytes(const void *data, std::size_t size)
{
    lo_ = campaign::fnv1a64(data, size, lo_);
    hi_ = campaign::fnv1a64(data, size, hi_);
}

void
SolverKeyBuilder::mixSeparator()
{
    mixBytes(&kSeparator, 1);
}

bool
solverCacheEnabled()
{
    int state = cache_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = envDisablesCache() ? 0 : 1;
        cache_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void
setSolverCacheEnabled(bool enabled)
{
    cache_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

SolverCacheStats
solverCacheStats()
{
    SolverCacheStats stats;
    stats.hits = cache_hits.load(std::memory_order_relaxed);
    stats.misses = cache_misses.load(std::memory_order_relaxed);
    stats.evictions = cache_evictions.load(std::memory_order_relaxed);
    return stats;
}

void
noteSolverCacheLookup(bool hit)
{
    ensureMetricsHook();
    (hit ? cache_hits : cache_misses)
        .fetch_add(1, std::memory_order_relaxed);
}

void
noteSolverCacheEvictions(std::uint64_t count)
{
    ensureMetricsHook();
    cache_evictions.fetch_add(count, std::memory_order_relaxed);
}

void
publishSolverCacheMetrics()
{
#if SWCC_OBS_ENABLED
    const SolverCacheStats stats = solverCacheStats();
    obs::MetricsRegistry &registry = obs::metrics();
    registry.gauge("solver_cache.hits")
        .set(static_cast<double>(stats.hits));
    registry.gauge("solver_cache.misses")
        .set(static_cast<double>(stats.misses));
    registry.gauge("solver_cache.evictions")
        .set(static_cast<double>(stats.evictions));
#endif
}

void
clearSolverCache()
{
    std::lock_guard<std::mutex> lock(clearers_mutex);
    for (void (*clearer)() : clearers()) {
        clearer();
    }
}

void
registerSolverCacheClearer(void (*clearer)())
{
    std::lock_guard<std::mutex> lock(clearers_mutex);
    clearers().push_back(clearer);
}

} // namespace swcc
