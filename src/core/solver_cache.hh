/**
 * @file
 * Thread-safe memo cache for analytical solver results.
 *
 * Campaigns re-solve the same operating points constantly: the Table 8
 * companion grids revisit each base point per varied parameter, power
 * curves share their workload point across processor counts, and
 * resumed or repeated sweeps recompute identical cells. The memo cache
 * keys a solution by the *complete* canonical description of what the
 * solver computes — domain, scheme, every workload parameter, machine
 * size, and the full cost table — and returns the stored value on a
 * hit. Cached values are the bitwise output of the original solve, so
 * caching never changes a result, only skips recomputing it.
 *
 * Keys are 128-bit: two FNV-1a 64 hashes of the same canonical byte
 * stream under different seeds. A collision would need both hashes to
 * collide simultaneously, pushing accidental aliasing past any
 * campaign size this library will see. Doubles are canonicalised
 * (-0.0 -> 0.0, any NaN -> one bit pattern) exactly like cell_hash.
 *
 * The cache is sharded (16 shards, one mutex each) so concurrent pool
 * lanes hit different locks; each shard is bounded and self-clears on
 * overflow rather than evicting (campaign working sets either fit or
 * churn — LRU bookkeeping would cost more than the rare refill).
 *
 * Gate: SWCC_SOLVER_CACHE=off|0|false disables it process-wide;
 * setSolverCacheEnabled() overrides programmatically (benches measure
 * cold vs warm, tests compare cached vs uncached bitwise).
 */

#ifndef SWCC_CORE_SOLVER_CACHE_HH
#define SWCC_CORE_SOLVER_CACHE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace swcc
{

class CostModel;
struct WorkloadParams;

/** 128-bit cache key: two independent FNV-1a 64 states. */
struct SolverCacheKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool operator==(const SolverCacheKey &) const = default;
};

struct SolverCacheKeyHash
{
    std::size_t
    operator()(const SolverCacheKey &key) const
    {
        return static_cast<std::size_t>(
            key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Builder for a solver cache key (mirrors campaign::CellKey, but
 * accumulates two hash states). Fields are framed with separators so
 * adjacent fields cannot alias.
 */
class SolverKeyBuilder
{
  public:
    /** @param domain Namespace of the solver ("bus", "network", ...). */
    explicit SolverKeyBuilder(std::string_view domain);

    /** Appends a string field. */
    SolverKeyBuilder &add(std::string_view field);

    /** Appends a double by canonical IEEE bit pattern. */
    SolverKeyBuilder &add(double value);

    /** Appends an unsigned integer field. */
    SolverKeyBuilder &add(std::uint64_t value);

    /** Appends every workload parameter, in Table 2 order. */
    SolverKeyBuilder &add(const WorkloadParams &params);

    /**
     * Appends the full cost table via its public interface: for every
     * operation, whether it is supported and (if so) its cpu/channel
     * cycles. Two semantically equal tables key identically.
     */
    SolverKeyBuilder &add(const CostModel &costs);

    SolverCacheKey
    key() const
    {
        return {lo_, hi_};
    }

  private:
    void mixBytes(const void *data, std::size_t size);
    void mixSeparator();

    std::uint64_t lo_;
    std::uint64_t hi_;
};

/** Hit/miss/eviction totals across every solver memo in the process. */
struct SolverCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Entries dropped by shard-overflow clears (not clear() calls). */
    std::uint64_t evictions = 0;
};

/** True unless disabled by env or setSolverCacheEnabled(false). */
bool solverCacheEnabled();

/** Programmatic override of the SWCC_SOLVER_CACHE gate. */
void setSolverCacheEnabled(bool enabled);

/** Process-wide hit/miss counters (all memo instances). */
SolverCacheStats solverCacheStats();

/** @internal Counts one hit/miss into solverCacheStats(). */
void noteSolverCacheLookup(bool hit);

/** @internal Counts @p count overflow-evicted entries. */
void noteSolverCacheEvictions(std::uint64_t count);

/**
 * Mirrors solverCacheStats() into the metrics registry as the
 * `solver_cache.{hits,misses,evictions}` gauges. Registered as an
 * obs finalize hook on first cache use, so every `--metrics-out`
 * artifact carries the totals; callable any time for a mid-run
 * snapshot (the daemon's stats endpoint reads the raw atomics
 * instead, which stay live under SWCC_OBS=OFF).
 */
void publishSolverCacheMetrics();

/**
 * Drops every entry of every registered memo (tests and
 * cold-vs-warm benches). Values reappear on the next solve.
 */
void clearSolverCache();

/** @internal Registers a memo's clear() with clearSolverCache(). */
void registerSolverCacheClearer(void (*clearer)());

/**
 * One sharded, bounded, thread-safe memo map (see file comment).
 * Instantiated per value type by the evaluators; register the
 * instance's clear with registerSolverCacheClearer() once.
 */
template <typename Value>
class SolverMemo
{
  public:
    /** Looks @p key up; counts the hit/miss. */
    bool
    lookup(const SolverCacheKey &key, Value &out)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        const bool hit = it != shard.map.end();
        noteSolverCacheLookup(hit);
        if (hit) {
            out = it->second;
        }
        return hit;
    }

    /** Stores @p value; a full shard clears itself first. */
    void
    insert(const SolverCacheKey &key, const Value &value)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.map.size() >= kMaxPerShard) {
            noteSolverCacheEvictions(shard.map.size());
            shard.map.clear();
        }
        shard.map.emplace(key, value);
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
        }
    }

  private:
    static constexpr std::size_t kShards = 16;
    static constexpr std::size_t kMaxPerShard = 4096;

    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<SolverCacheKey, Value, SolverCacheKeyHash>
            map;
    };

    Shard &
    shardFor(const SolverCacheKey &key)
    {
        return shards_[key.hi % kShards];
    }

    std::array<Shard, kShards> shards_;
};

} // namespace swcc

#endif // SWCC_CORE_SOLVER_CACHE_HH
