#include "core/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace swcc::simd
{

namespace
{

/// -1 = consult SWCC_SIMD + CPU detection, 0 = forced scalar,
/// 1 = forced detection (ignore the env var).
std::atomic<int> simd_override{-1};

bool
envDisablesSimd()
{
    const char *raw = std::getenv("SWCC_SIMD");
    if (raw == nullptr)
        return false;
    return std::strcmp(raw, "off") == 0 || std::strcmp(raw, "OFF") == 0 ||
           std::strcmp(raw, "0") == 0 || std::strcmp(raw, "false") == 0 ||
           std::strcmp(raw, "no") == 0;
}

Isa
detectIsa()
{
#if defined(__aarch64__)
    return Isa::Neon;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    return Isa::Scalar;
#else
    return Isa::Scalar;
#endif
}

} // namespace

Isa
activeIsa()
{
    const int mode = simd_override.load(std::memory_order_relaxed);
    if (mode == 0)
        return Isa::Scalar;
    if (mode == -1 && envDisablesSimd())
        return Isa::Scalar;
    // Detection is cheap (one CPUID-backed builtin) but cache it anyway
    // so the hot solver loop pays a single relaxed load.
    static const Isa detected = detectIsa();
    return detected;
}

unsigned
laneWidth(Isa isa)
{
    switch (isa) {
      case Isa::Avx2:
        return 4;
      case Isa::Neon:
        return 2;
      case Isa::Scalar:
        break;
    }
    return 1;
}

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Avx2:
        return "avx2";
      case Isa::Neon:
        return "neon";
      case Isa::Scalar:
        break;
    }
    return "scalar";
}

void
setSimdEnabled(bool enabled)
{
    simd_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

} // namespace swcc::simd
