/**
 * @file
 * Portable SIMD dispatch for the solver kernels.
 *
 * The batched bisection sweep and the bus-curve derive pass process
 * lane-width groups of doubles per iteration. This header owns the
 * policy side: which instruction set the kernels may use on this
 * machine, how wide a lane group is, and the escape hatches.
 *
 * Identity contract: every vector kernel is restricted to elementwise
 * IEEE-754 add/sub/mul/div/compare/blend, which are bit-identical to
 * the corresponding scalar operations, and the kernel translation
 * units are compiled with FMA contraction disabled. A SIMD solve is
 * therefore bitwise identical to the scalar solve — the dispatch
 * level may change performance, never results. Tests enforce this.
 *
 * Dispatch is resolved at runtime: AVX2 via CPUID on x86-64 (the
 * kernels live in a translation unit compiled with -mavx2 and are
 * only ever called after the check), NEON unconditionally on AArch64,
 * scalar everywhere else. `SWCC_SIMD=off` in the environment (or
 * setSimdEnabled(false) from tests/benchmarks) forces the scalar
 * fallback.
 */

#ifndef SWCC_CORE_SIMD_HH
#define SWCC_CORE_SIMD_HH

namespace swcc::simd
{

/** Instruction set the solver kernels dispatch to. */
enum class Isa
{
    /** Plain scalar loops; always available, the identity reference. */
    Scalar,
    /** 2-wide double lanes (AArch64 NEON). */
    Neon,
    /** 4-wide double lanes (x86-64 AVX2). */
    Avx2,
};

/**
 * The instruction set in effect: the widest one the CPU supports,
 * unless the SWCC_SIMD=off escape hatch (or setSimdEnabled(false))
 * forces Scalar. Detection runs once; the result is cached.
 */
Isa activeIsa();

/** Double lanes per vector op: 4 (AVX2), 2 (NEON), 1 (Scalar). */
unsigned laneWidth(Isa isa);

/** Lane width of the active instruction set. */
inline unsigned
laneWidth()
{
    return laneWidth(activeIsa());
}

/** Human-readable name ("avx2", "neon", "scalar"). */
const char *isaName(Isa isa);

/**
 * Overrides the SWCC_SIMD environment gate programmatically (tests
 * and the before/after benchmarks). Passing false forces the scalar
 * path; passing true re-runs CPU detection. Thread-safe.
 */
void setSimdEnabled(bool enabled);

/** True when vector kernels are eligible (CPU support and gates). */
inline bool
simdEnabled()
{
    return activeIsa() != Isa::Scalar;
}

} // namespace swcc::simd

#endif // SWCC_CORE_SIMD_HH
