/**
 * @file
 * Bus contention model: a closed queueing network with one server (the
 * bus) and n customers (the processors), solved by exact Mean Value
 * Analysis (paper Section 2.3).
 */

#ifndef SWCC_CORE_BUS_MODEL_HH
#define SWCC_CORE_BUS_MODEL_HH

#include <cstddef>
#include <vector>

#include "core/per_instruction.hh"
#include "core/types.hh"

namespace swcc
{

/**
 * Solution of the bus contention model for one operating point.
 */
struct BusSolution
{
    /** Number of processors n. */
    unsigned processors = 0;
    /** c: CPU cycles per instruction without contention. */
    Cycles cpu = 0.0;
    /** b: bus cycles per instruction (the mean bus service demand). */
    Cycles bus = 0.0;
    /** w: contention (queueing) cycles per instruction. */
    Cycles waiting = 0.0;
    /** Fraction of time the bus is busy. */
    double busUtilization = 0.0;
    /** Mean number of processors queued or in service at the bus. */
    double busQueueLength = 0.0;
    /** U = 1 / (c + w): processor utilization (Equation 3). */
    double processorUtilization = 0.0;
    /** n * U: system processing power. */
    double processingPower = 0.0;

    /** Total cycles per instruction including contention, c + w. */
    Cycles cyclesPerInstruction() const { return cpu + waiting; }
};

/**
 * Solves the closed single-server queueing model.
 *
 * Each processor alternates between a think phase of mean Z = c - b
 * cycles and a bus transaction of mean b cycles (exponential service,
 * as in the paper: the model "is based on exponential service times").
 * Exact MVA recursion over the customer population yields the mean
 * waiting time w per instruction; U = 1/(c + w).
 *
 * @param cost Per-instruction cost (c and b) of the workload.
 * @param processors Number of processors n >= 1.
 * @throws std::invalid_argument if processors == 0, b < 0, or c < b.
 */
BusSolution solveBus(const PerInstructionCost &cost, unsigned processors);

/**
 * Solves the bus model for every processor count 1..max_processors in
 * ONE pass of the MVA recursion.
 *
 * The exact MVA recursion over the customer population visits every
 * prefix population anyway — solving for n processors computes the
 * k-processor solution for all k < n along the way. This kernel
 * records each prefix, then derives the per-point outputs in a second
 * pass over contiguous arrays (autovectorizable), turning a curve of N
 * solves from O(N^2) recursion steps into O(N).
 *
 * Element i is bitwise identical to solveBus(cost, i + 1): the
 * recursion executes the same floating-point operations in the same
 * order that the per-point solver would.
 *
 * @param cost Per-instruction cost (c and b) of the workload.
 * @param max_processors Largest population to solve, >= 1.
 * @throws std::invalid_argument as solveBus().
 */
std::vector<BusSolution> solveBusCurve(const PerInstructionCost &cost,
                                       unsigned max_processors);

/**
 * Solves the bus model with a general service-time distribution,
 * parameterised by the squared coefficient of variation of the bus
 * service time (Reiser's approximate MVA for FCFS queues):
 *
 *   R_k = S * (1 + Q_{k-1}) - (1 - scv) / 2 * U_{k-1} * S
 *
 * scv = 1 recovers the exact exponential MVA of solveBus(); scv = 0
 * models the simulator's deterministic bus timing, whose shorter
 * residual service halves the waiting seen by an arriving processor.
 * The paper's validation bias — the analytical model "consistently
 * overestimates bus contention" — is exactly the scv = 1 vs scv = 0
 * gap, and this solver quantifies it.
 *
 * @param cost Per-instruction cost (c and b).
 * @param processors Number of processors n >= 1.
 * @param scv Squared coefficient of variation of bus service, >= 0.
 */
BusSolution solveBusGeneralService(const PerInstructionCost &cost,
                                   unsigned processors, double scv);

/**
 * Upper bound on processing power imposed by bus bandwidth: the bus can
 * serve at most one transaction per b cycles, so processing power
 * saturates at 1/b instructions per cycle (infinite for b == 0).
 */
double busSaturationPower(const PerInstructionCost &cost);

/**
 * Smallest number of processors at which the asymptotic bus-bandwidth
 * bound (1/b) crosses the no-contention bound (n/c): the knee of the
 * processing-power curve. Returns a real number; the curve visibly
 * flattens past its ceiling.
 */
double busSaturationProcessors(const PerInstructionCost &cost);

} // namespace swcc

#endif // SWCC_CORE_BUS_MODEL_HH
