/**
 * @file
 * Multistage-network contention model (paper Section 6.2).
 *
 * Implements Patel's analysis of unbuffered circuit-switched banyan
 * (Omega/Delta) networks built from 2x2 crossbars with drop-and-retry
 * flow control, under the unit-request approximation: a processor that
 * would issue transactions of t cycles at a rate of m per cycle is
 * modelled as issuing independent unit-time requests at rate m*t.
 */

#ifndef SWCC_CORE_NETWORK_MODEL_HH
#define SWCC_CORE_NETWORK_MODEL_HH

#include <vector>

#include "core/per_instruction.hh"
#include "core/types.hh"

namespace swcc
{

/**
 * Solution of the network contention model for one operating point.
 */
struct NetworkSolution
{
    /** Number of switch stages n (2^n processors). */
    unsigned stages = 0;
    /** Number of processors, 2^stages. */
    unsigned processors = 0;
    /** c: CPU cycles per instruction without contention. */
    Cycles cpu = 0.0;
    /** t = b: network cycles per instruction (transaction size). */
    Cycles network = 0.0;
    /** m = 1/(c - b): transactions per CPU-busy cycle. */
    double transactionRate = 0.0;
    /** Offered unit-request rate m*t. */
    double unitRequestRate = 0.0;
    /**
     * Fixed-point U of Equations 4-6: the fraction of time a processor
     * computes rather than holding a request at its network port.
     */
    double computeFraction = 0.0;
    /** Request probability at a stage-0 input, m0 = 1 - U. */
    double inputLoad = 0.0;
    /** Probability an offered request is accepted end-to-end, mn/m0. */
    double acceptance = 0.0;
    /** Total cycles per instruction including retries, (c - b)/U. */
    Cycles cyclesPerInstruction = 0.0;
    /** Contention cycles per instruction, cyclesPerInstruction - c. */
    Cycles waiting = 0.0;
    /** Per-processor utilization, 1 / cyclesPerInstruction. */
    double processorUtilization = 0.0;
    /** processors * processorUtilization. */
    double processingPower = 0.0;
};

/**
 * One step of Patel's stage recursion for 2x2 crossbars: given request
 * probability @p m at each input of a stage, the probability of a
 * request at each of its outputs (Equation 5).
 */
double patelStageStep(double m);

/**
 * The k x k crossbar generalisation the paper points to ("the
 * analysis can be extended easily to ... crossbar switches with a
 * larger dimension"): m' = 1 - (1 - m/k)^k.
 *
 * @param m Input request probability.
 * @param k Switch dimension (>= 2).
 */
double patelStageStepK(double m, unsigned k);

/**
 * Compute-fraction fixed point for a network of k x k crossbars with
 * @p stages stages (k^stages processors); k = 2 reduces to
 * solveComputeFraction().
 */
double solveComputeFractionK(double rate, double size, unsigned stages,
                             unsigned k);

/**
 * Smallest stage count of k x k switches covering @p processors,
 * i.e. ceil(log_k(processors)), minimum 1.
 */
unsigned stagesForProcessorsK(unsigned processors, unsigned k);

/**
 * Runs the stage recursion through @p stages stages: the probability of
 * a request arriving at a memory module, given input load @p m0.
 */
double patelNetworkOutput(double m0, unsigned stages);

/** Per-stage loads m_0 .. m_n for diagnostics and tests. */
std::vector<double> patelStageLoads(double m0, unsigned stages);

/**
 * Solves the fixed point of Equations 4-6 for a raw (rate, size) pair.
 *
 * Finds U in (0, 1] with U = P(1 - U) / (m*t) where P maps an input
 * load through the stage recursion. The right-hand side decreases in U
 * while the left increases, so the fixed point is unique; it is located
 * by bisection to ~1e-12.
 *
 * @param rate Transactions per CPU-busy cycle, m > 0.
 * @param size Network cycles per transaction, t > 0.
 * @param stages Number of switch stages >= 1.
 * @return The compute fraction U.
 */
double solveComputeFraction(double rate, double size, unsigned stages);

/**
 * Enables/disables warm-bracket seeding in the batched fixed-point
 * sweep, overriding the SWCC_WARM_BRACKET environment gate. Warm
 * seeding starts a cell's bisection from a sign-verified dyadic
 * sub-bracket near the previous cell's converged U, cutting
 * iterations on monotone curve sweeps while staying bitwise identical
 * to the cold solve (the sub-bracket is exactly the one cold
 * bisection reaches at that depth). Thread-safe.
 */
void setWarmBracketEnabled(bool enabled);

/** True unless disabled via SWCC_WARM_BRACKET=off or the setter. */
bool warmBracketEnabled();

/**
 * Batched fixed-point solve: one lane-parallel bisection sweep over
 * @p count operating points held in contiguous arrays.
 *
 * Cells are processed in a fixed window of lanes; each bisection step
 * advances the whole window with one SIMD kernel call (AVX2/NEON when
 * the CPU supports it and SWCC_SIMD is not off, a scalar loop
 * otherwise), converged lanes are compacted out and refilled from the
 * pending cells, and refills warm-start from the previous converged U
 * (see setWarmBracketEnabled()). Per point, the sequence of bracket
 * updates — and therefore the returned U — is bitwise identical to
 * solveComputeFraction() in every mode.
 *
 * @param rates  Transaction rates m > 0, one per point.
 * @param sizes  Transaction sizes t > 0, one per point.
 * @param stages Stage counts >= 1, one per point.
 * @param count  Number of points.
 * @param out    Receives the compute fraction U of each point.
 * @throws std::invalid_argument / SolverNonConvergence as the scalar
 *         solver, identifying the first offending point.
 */
void solveComputeFractionBatch(const double *rates, const double *sizes,
                               const unsigned *stages, std::size_t count,
                               double *out);

/**
 * Solves the network model for a workload's per-instruction cost.
 *
 * @param cost c and b computed against a NetworkCostModel of the same
 *             stage count.
 * @param stages Number of switch stages (2^stages processors).
 * @throws std::invalid_argument on non-positive stage count or
 *         inconsistent costs.
 */
NetworkSolution solveNetwork(const PerInstructionCost &cost,
                             unsigned stages);

/**
 * Solves the network model for a whole curve of machines in one
 * batched fixed-point sweep: element i solves @p costs[i] on a
 * network of first_stage + i stages, bitwise identical to calling
 * solveNetwork(costs[i], first_stage + i) per point.
 *
 * @param costs Per-instruction costs, each computed against a
 *              NetworkCostModel of the matching stage count.
 * @param first_stage Stage count of costs[0] (>= 1).
 */
std::vector<NetworkSolution>
solveNetworkCurve(const std::vector<PerInstructionCost> &costs,
                  unsigned first_stage);

/**
 * Smallest stage count whose processor count covers @p processors,
 * i.e. ceil(log2(processors)), minimum 1.
 */
unsigned stagesForProcessors(unsigned processors);

} // namespace swcc

#endif // SWCC_CORE_NETWORK_MODEL_HH
