/**
 * @file
 * Analytical model of a write-invalidate snoopy protocol on a bus —
 * the extension counterpart of the Dragon model of Table 6, providing
 * the Archibald & Baer write-update vs write-invalidate comparison in
 * the paper's own formalism.
 *
 * Per instruction: writes to blocks with remote sharers (frequency
 * ls*shd*wr*opres*firstWriteFraction) issue an invalidation bus
 * operation (priced as the 1-bus-cycle word broadcast); each destroys
 * nshd remote copies, of which a configurable fraction are
 * re-referenced and miss again (coherence misses); coherence misses
 * are supplied by the writing cache (it holds the block dirty).
 * Unlike Dragon, repeat writes within one run are free — the
 * invalidation made the line exclusive — which is captured by
 * firstWriteFraction (the reciprocal of the mean write-run length).
 */

#ifndef SWCC_CORE_INVALIDATE_MODEL_HH
#define SWCC_CORE_INVALIDATE_MODEL_HH

#include "core/bus_model.hh"
#include "core/frequency_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** Tunables of the write-invalidate model. */
struct InvalidateModelConfig
{
    /**
     * Fraction of destroyed copies whose next reference misses
     * (coherence misses per invalidated copy).
     */
    double rerefFraction = 0.5;
    /**
     * Fraction of shared writes that are the *first* write of a run
     * and therefore actually broadcast an invalidation; subsequent
     * writes hit an exclusive line. Roughly 1 / (wr * apl) capped at
     * 1; exposed directly so measured values can be plugged in.
     */
    double firstWriteFraction = 0.5;

    void validate() const;

    /**
     * Derives firstWriteFraction from apl and wr: a run of apl
     * references contains about wr*apl writes, the first of which
     * invalidates.
     */
    static double firstWriteFromRun(const WorkloadParams &params);
};

/**
 * Per-instruction operation frequencies of the write-invalidate
 * scheme.
 */
FrequencyVector invalidateFrequencies(
    const WorkloadParams &params,
    const InvalidateModelConfig &config = {});

/**
 * Evaluates the write-invalidate scheme on a bus.
 */
BusSolution evaluateInvalidateBus(
    const WorkloadParams &params, unsigned processors,
    const InvalidateModelConfig &config = {});

} // namespace swcc

#endif // SWCC_CORE_INVALIDATE_MODEL_HH
