/**
 * @file
 * Analytical model of an invalidation-based directory coherence
 * scheme on a multistage network — the hardware alternative the paper
 * invokes for scale ("The performance of the Software-Flush scheme
 * for the low range approximates the performance of hardware-based
 * directory schemes", Section 6.3; directory schemes per Censier &
 * Feautrier and Agarwal et al.).
 *
 * The model composes with the existing machinery by expressing
 * directory activity in terms of the Table 9 network operations:
 *
 *  - ordinary fetches use the clean/dirty fetch costs;
 *  - a read miss to a block dirty in a remote cache (probability
 *    1 - oclean) costs one extra short round trip, priced as a
 *    read-through (the directory retrieves the owner's copy);
 *  - a write to a block with remote sharers (frequency
 *    ls*shd*wr*opres) costs an ownership/invalidation round trip,
 *    priced as a write-through;
 *  - invalidations destroy nshd remote copies per ownership request;
 *    a configurable fraction of those copies would have been
 *    re-referenced and now miss again (coherence misses).
 */

#ifndef SWCC_CORE_DIRECTORY_MODEL_HH
#define SWCC_CORE_DIRECTORY_MODEL_HH

#include "core/frequency_model.hh"
#include "core/network_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** Tunables of the directory model. */
struct DirectoryModelConfig
{
    /**
     * Fraction of invalidated remote copies whose next reference
     * becomes an extra (coherence) miss. 0 models an optimistic
     * directory, 1 a worst case; 0.5 is a reasonable default for the
     * fine-grain sharing the paper's traces show.
     */
    double rerefFraction = 0.5;

    void validate() const;
};

/**
 * Per-instruction operation frequencies of the directory scheme
 * (the extension analogue of the paper's Tables 3-6).
 */
FrequencyVector directoryFrequencies(
    const WorkloadParams &params,
    const DirectoryModelConfig &config = {});

/**
 * Evaluates the directory scheme on a 2^stages-processor
 * circuit-switched multistage network.
 */
NetworkSolution evaluateDirectoryNetwork(
    const WorkloadParams &params, unsigned stages,
    const DirectoryModelConfig &config = {});

} // namespace swcc

#endif // SWCC_CORE_DIRECTORY_MODEL_HH
