#include "core/network_model.hh"

#include <cmath>
#include <stdexcept>

#include "core/campaign/faults.hh"
#include "core/obs/metrics.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/**
 * Records one bisection solve: how many iterations it took and the
 * bracket width it converged to. Registration is a one-time static;
 * the per-solve cost is two relaxed increments and one histogram
 * observe.
 */
void
noteNetworkSolve(int iterations, double width)
{
    static obs::Counter &solves =
        obs::metrics().counter("solver.network.solves");
    static obs::Counter &iters =
        obs::metrics().counter("solver.network.iterations");
    static obs::Histogram &residual = obs::metrics().histogram(
        "solver.network.bracket_width",
        {1e-15, 1e-13, 1e-11, 1e-9, 1e-6, 1e-3});
    solves.add(1);
    iters.add(static_cast<std::uint64_t>(iterations));
    residual.observe(width);
}
#endif

} // namespace

double
patelStageStep(double m)
{
    const double half = m / 2.0;
    return 1.0 - (1.0 - half) * (1.0 - half);
}

double
patelStageStepK(double m, unsigned k)
{
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }
    const double per_input = m / static_cast<double>(k);
    return 1.0 - std::pow(1.0 - per_input, static_cast<double>(k));
}

double
solveComputeFractionK(double rate, double size, unsigned stages,
                      unsigned k)
{
    if (rate <= 0.0 || size <= 0.0) {
        throw std::invalid_argument(
            "transaction rate and size must be positive");
    }
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }

    const double demand = rate * size;
    auto output = [stages, k](double m0) {
        double m = m0;
        for (unsigned i = 0; i < stages; ++i) {
            m = patelStageStepK(m, k);
        }
        return m;
    };
    auto residual = [demand, &output](double u) {
        return output(1.0 - u) / demand - u;
    };

    double lo = 0.0;
    double hi = 1.0;
    int iterations = 0;
    for (int iter = 0; iter < 200; ++iter) {
        iterations = iter + 1;
        const double mid = 0.5 * (lo + hi);
        if (residual(mid) > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-13) {
            break;
        }
    }
#if SWCC_OBS_ENABLED
    noteNetworkSolve(iterations, hi - lo);
#else
    (void)iterations;
#endif
    campaign::checkFault(campaign::FaultSite::SolverNet);
    if (!(hi - lo < 1e-6)) {
        throw campaign::SolverNonConvergence(
            "network fixed point failed to bracket U");
    }
    return 0.5 * (lo + hi);
}

unsigned
stagesForProcessorsK(unsigned processors, unsigned k)
{
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }
    if (processors < 2) {
        return 1;
    }
    unsigned stages = 0;
    unsigned long long capacity = 1;
    while (capacity < processors) {
        capacity *= k;
        ++stages;
    }
    return stages;
}

double
patelNetworkOutput(double m0, unsigned stages)
{
    double m = m0;
    for (unsigned i = 0; i < stages; ++i) {
        m = patelStageStep(m);
    }
    return m;
}

std::vector<double>
patelStageLoads(double m0, unsigned stages)
{
    std::vector<double> loads;
    loads.reserve(stages + 1);
    double m = m0;
    loads.push_back(m);
    for (unsigned i = 0; i < stages; ++i) {
        m = patelStageStep(m);
        loads.push_back(m);
    }
    return loads;
}

double
solveComputeFraction(double rate, double size, unsigned stages)
{
    if (rate <= 0.0 || size <= 0.0) {
        throw std::invalid_argument(
            "transaction rate and size must be positive");
    }
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }

    const double demand = rate * size; // m*t, offered unit-request rate.

    // g(U) = P(1 - U)/(m t) - U; g(0) > 0, g(1) = -1, g decreasing.
    auto residual = [demand, stages](double u) {
        return patelNetworkOutput(1.0 - u, stages) / demand - u;
    };

    double lo = 0.0;
    double hi = 1.0;
    int iterations = 0;
    for (int iter = 0; iter < 200; ++iter) {
        iterations = iter + 1;
        const double mid = 0.5 * (lo + hi);
        if (residual(mid) > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-13) {
            break;
        }
    }
#if SWCC_OBS_ENABLED
    noteNetworkSolve(iterations, hi - lo);
#else
    (void)iterations;
#endif
    campaign::checkFault(campaign::FaultSite::SolverNet);
    if (!(hi - lo < 1e-6)) {
        throw campaign::SolverNonConvergence(
            "network fixed point failed to bracket U");
    }
    return 0.5 * (lo + hi);
}

void
solveComputeFractionBatch(const double *rates, const double *sizes,
                          const unsigned *stages, std::size_t count,
                          double *out)
{
    for (std::size_t j = 0; j < count; ++j) {
        if (rates[j] <= 0.0 || sizes[j] <= 0.0) {
            throw std::invalid_argument(
                "transaction rate and size must be positive");
        }
        if (stages[j] == 0) {
            throw std::invalid_argument(
                "need at least one network stage");
        }
    }

    // Contiguous bisection state; every iteration sweeps the active
    // points in one pass instead of re-entering the scalar solver.
    std::vector<double> lo(count, 0.0);
    std::vector<double> hi(count, 1.0);
    std::vector<double> demand(count);
    std::vector<int> iterations(count, 0);
    std::vector<unsigned char> active(count, 1);
    for (std::size_t j = 0; j < count; ++j) {
        demand[j] = rates[j] * sizes[j];
    }

    std::size_t remaining = count;
    for (int iter = 0; iter < 200 && remaining > 0; ++iter) {
        for (std::size_t j = 0; j < count; ++j) {
            if (!active[j]) {
                continue;
            }
            iterations[j] = iter + 1;
            // Same arithmetic, same order as the scalar residual:
            // g(U) = P(1 - U)/(m t) - U.
            const double mid = 0.5 * (lo[j] + hi[j]);
            double m = 1.0 - mid;
            for (unsigned s = 0; s < stages[j]; ++s) {
                m = patelStageStep(m);
            }
            if (m / demand[j] - mid > 0.0) {
                lo[j] = mid;
            } else {
                hi[j] = mid;
            }
            if (hi[j] - lo[j] < 1e-13) {
                active[j] = 0;
                --remaining;
            }
        }
    }

    for (std::size_t j = 0; j < count; ++j) {
#if SWCC_OBS_ENABLED
        noteNetworkSolve(iterations[j], hi[j] - lo[j]);
#endif
        campaign::checkFault(campaign::FaultSite::SolverNet);
        if (!(hi[j] - lo[j] < 1e-6)) {
            throw campaign::SolverNonConvergence(
                "network fixed point failed to bracket U");
        }
        out[j] = 0.5 * (lo[j] + hi[j]);
    }
}

NetworkSolution
solveNetwork(const PerInstructionCost &cost, unsigned stages)
{
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    if (cost.channel < 0.0 || cost.cpu <= cost.channel) {
        throw std::invalid_argument(
            "per-instruction cost must satisfy 0 <= b < c");
    }

    NetworkSolution sol;
    sol.stages = stages;
    sol.processors = 1u << stages;
    sol.cpu = cost.cpu;
    sol.network = cost.channel;

    const double think = cost.thinkTime();
    sol.transactionRate = 1.0 / think;

    if (cost.channel == 0.0) {
        // The workload never touches the network.
        sol.unitRequestRate = 0.0;
        sol.computeFraction = 1.0;
        sol.inputLoad = 0.0;
        sol.acceptance = 1.0;
        sol.cyclesPerInstruction = cost.cpu;
        sol.waiting = 0.0;
        sol.processorUtilization = 1.0 / cost.cpu;
        sol.processingPower =
            static_cast<double>(sol.processors) * sol.processorUtilization;
        return sol;
    }

    sol.unitRequestRate = sol.transactionRate * cost.channel;
    sol.computeFraction =
        solveComputeFraction(sol.transactionRate, cost.channel, stages);
    sol.inputLoad = 1.0 - sol.computeFraction;
    sol.acceptance = sol.inputLoad > 0.0
        ? patelNetworkOutput(sol.inputLoad, stages) / sol.inputLoad
        : 1.0;
    sol.cyclesPerInstruction = think / sol.computeFraction;
    sol.waiting = sol.cyclesPerInstruction - cost.cpu;
    sol.processorUtilization = 1.0 / sol.cyclesPerInstruction;
    sol.processingPower =
        static_cast<double>(sol.processors) * sol.processorUtilization;
    return sol;
}

std::vector<NetworkSolution>
solveNetworkCurve(const std::vector<PerInstructionCost> &costs,
                  unsigned first_stage)
{
    if (first_stage == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    const std::size_t n = costs.size();
    std::vector<NetworkSolution> curve(n);

    // Gather the points that need the fixed point into contiguous
    // arrays for one batched bisection sweep.
    std::vector<double> rates;
    std::vector<double> sizes;
    std::vector<unsigned> point_stages;
    std::vector<std::size_t> where;
    rates.reserve(n);
    sizes.reserve(n);
    point_stages.reserve(n);
    where.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        const PerInstructionCost &cost = costs[i];
        const unsigned stages =
            first_stage + static_cast<unsigned>(i);
        if (cost.channel < 0.0 || cost.cpu <= cost.channel) {
            throw std::invalid_argument(
                "per-instruction cost must satisfy 0 <= b < c");
        }

        NetworkSolution &sol = curve[i];
        sol.stages = stages;
        sol.processors = 1u << stages;
        sol.cpu = cost.cpu;
        sol.network = cost.channel;

        const double think = cost.thinkTime();
        sol.transactionRate = 1.0 / think;

        if (cost.channel == 0.0) {
            // The workload never touches the network.
            sol.unitRequestRate = 0.0;
            sol.computeFraction = 1.0;
            sol.inputLoad = 0.0;
            sol.acceptance = 1.0;
            sol.cyclesPerInstruction = cost.cpu;
            sol.waiting = 0.0;
            sol.processorUtilization = 1.0 / cost.cpu;
            sol.processingPower = static_cast<double>(sol.processors) *
                sol.processorUtilization;
            continue;
        }

        sol.unitRequestRate = sol.transactionRate * cost.channel;
        rates.push_back(sol.transactionRate);
        sizes.push_back(cost.channel);
        point_stages.push_back(stages);
        where.push_back(i);
    }

    if (!where.empty()) {
        std::vector<double> fractions(where.size());
        solveComputeFractionBatch(rates.data(), sizes.data(),
                                  point_stages.data(), where.size(),
                                  fractions.data());
        for (std::size_t j = 0; j < where.size(); ++j) {
            NetworkSolution &sol = curve[where[j]];
            const double think = sol.cpu - sol.network;
            sol.computeFraction = fractions[j];
            sol.inputLoad = 1.0 - sol.computeFraction;
            sol.acceptance = sol.inputLoad > 0.0
                ? patelNetworkOutput(sol.inputLoad, sol.stages) /
                    sol.inputLoad
                : 1.0;
            sol.cyclesPerInstruction = think / sol.computeFraction;
            sol.waiting = sol.cyclesPerInstruction - sol.cpu;
            sol.processorUtilization = 1.0 / sol.cyclesPerInstruction;
            sol.processingPower = static_cast<double>(sol.processors) *
                sol.processorUtilization;
        }
    }
    return curve;
}

unsigned
stagesForProcessors(unsigned processors)
{
    if (processors < 2) {
        return 1;
    }
    unsigned stages = 0;
    unsigned capacity = 1;
    while (capacity < processors) {
        capacity *= 2;
        ++stages;
    }
    return stages;
}

} // namespace swcc
