#include "core/network_model.hh"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/campaign/faults.hh"
#include "core/obs/metrics.hh"
#include "core/simd.hh"
#include "core/simd_kernels.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/**
 * Records one bisection solve: how many iterations it took and the
 * bracket width it converged to. Registration is a one-time static;
 * the per-solve cost is two relaxed increments and one histogram
 * observe.
 */
void
noteNetworkSolve(int iterations, double width)
{
    static obs::Counter &solves =
        obs::metrics().counter("solver.network.solves");
    static obs::Counter &iters =
        obs::metrics().counter("solver.network.iterations");
    static obs::Histogram &residual = obs::metrics().histogram(
        "solver.network.bracket_width",
        {1e-15, 1e-13, 1e-11, 1e-9, 1e-6, 1e-3});
    solves.add(1);
    iters.add(static_cast<std::uint64_t>(iterations));
    residual.observe(width);
}

/** Records one warm-bracket probe outcome in the batched sweep. */
void
noteWarmProbe(bool hit)
{
    static obs::Counter &hits =
        obs::metrics().counter("solver.network.warm_hits");
    static obs::Counter &misses =
        obs::metrics().counter("solver.network.warm_misses");
    (hit ? hits : misses).add(1);
}
#endif

/// -1 = consult SWCC_WARM_BRACKET, 0 = forced off, 1 = forced on.
std::atomic<int> warm_bracket_override{-1};

bool
envDisablesWarmBracket()
{
    const char *raw = std::getenv("SWCC_WARM_BRACKET");
    if (raw == nullptr)
        return false;
    return std::strcmp(raw, "off") == 0 || std::strcmp(raw, "OFF") == 0 ||
           std::strcmp(raw, "0") == 0 || std::strcmp(raw, "false") == 0 ||
           std::strcmp(raw, "no") == 0;
}

/**
 * Sign of the bisection residual g(u) = P(1 - u)/(m t) - u, with the
 * exact arithmetic (order and operations) of the sweep kernels, so a
 * warm-bracket probe reaches the same verdict cold bisection reached
 * (or would reach) at the same point.
 */
bool
residualPositive(double u, double demand, unsigned stages)
{
    double m = 1.0 - u;
    for (unsigned s = 0; s < stages; ++s) {
        m = patelStageStep(m);
    }
    return m / demand - u > 0.0;
}

struct Bracket
{
    double lo;
    double hi;
    /** Bisection depth of the bracket: hi - lo == 2^-depth. */
    unsigned depth;
};

/**
 * Bisection iterations from the full [0, 1] bracket until
 * hi - lo < 1e-13. All bracket endpoints are exact dyadic rationals,
 * so the width halves *exactly* every iteration and every cell —
 * regardless of its residual — converges at this same depth (44).
 * That makes per-iteration convergence checks unnecessary: a cell
 * seeded at depth d needs exactly (target - d) more iterations.
 */
unsigned
targetBisectionDepth()
{
    unsigned depth = 0;
    for (double width = 1.0; !(width < 1e-13); width *= 0.5) {
        ++depth;
    }
    return depth;
}

/**
 * Warm-bracket probe: finds a dyadic interval [k/2^w, (k+1)/2^w]
 * around @p hint whose endpoint residual signs certify it as the
 * interval cold bisection from [0, 1] reaches at depth w.
 *
 * Why this preserves bitwise identity: cold bisection's bracket after
 * w iterations is always a depth-w dyadic interval, its endpoints are
 * exact doubles, and all its sign decisions are made by the same
 * residualPositive() arithmetic used here. Because |g'| >= 1, the
 * residual's magnitude at depth-w grid points more than one cell from
 * the root (>= 2^-w for w <= 16) dwarfs evaluation noise (~1e-15), so
 * the computed signs are strictly decreasing across the grid and
 * exactly one interval passes the endpoint test — the one on the cold
 * trajectory. Boundary endpoints auto-pass (cold never evaluates 0 or
 * 1), which also reproduces cold behaviour for degenerate residuals
 * (e.g. NaN demand) that push the bracket onto a domain edge.
 * Resuming bisection from that interval therefore replays the exact
 * remaining sequence of midpoints, and the converged bracket — and
 * result — is bit-for-bit the cold one.
 */
bool
probeWarmBracket(double hint, double demand, unsigned stages,
                 Bracket &out)
{
    if (!(hint > 0.0) || !(hint < 1.0)) {
        return false;
    }
    static constexpr int kDepths[] = {16, 12, 8, 4};
    int budget = 8; // residual evaluations; each costs one iteration.
    for (const int depth : kDepths) {
        const double scale = std::ldexp(1.0, depth);
        const std::uint64_t grid = std::uint64_t{1} << depth;
        std::uint64_t k = static_cast<std::uint64_t>(hint * scale);
        if (k >= grid) {
            k = grid - 1;
        }
        const double a = std::ldexp(static_cast<double>(k), -depth);
        const double b = std::ldexp(static_cast<double>(k + 1), -depth);
        if (budget < 2) {
            return false;
        }
        bool sign_a = true; // g(0) counts as positive.
        if (k > 0) {
            sign_a = residualPositive(a, demand, stages);
            --budget;
        }
        bool sign_b = false; // g(1) counts as non-positive.
        if (k + 1 < grid) {
            sign_b = residualPositive(b, demand, stages);
            --budget;
        }
        if (sign_a && !sign_b) {
            out = {a, b, static_cast<unsigned>(depth)};
            return true;
        }
        if (budget < 1) {
            return false;
        }
        if (!sign_a && k > 0) {
            // Root is left of a; [a - 2^-w, a] already passes on the
            // right (g(a) <= 0), test its left endpoint.
            const double a2 =
                std::ldexp(static_cast<double>(k - 1), -depth);
            bool sign_a2 = true;
            if (k - 1 > 0) {
                sign_a2 = residualPositive(a2, demand, stages);
                --budget;
            }
            if (sign_a2) {
                out = {a2, a, static_cast<unsigned>(depth)};
                return true;
            }
        } else if (sign_b && k + 1 < grid) {
            // Root is right of b; [b, b + 2^-w] passes on the left.
            const double b2 =
                std::ldexp(static_cast<double>(k + 2), -depth);
            bool sign_b2 = false;
            if (k + 2 < grid) {
                sign_b2 = residualPositive(b2, demand, stages);
                --budget;
            }
            if (!sign_b2) {
                out = {b, b2, static_cast<unsigned>(depth)};
                return true;
            }
        }
    }
    return false;
}

/** Lanes per sweep window: four AVX2 vectors, eight NEON vectors. */
constexpr unsigned kWindowLanes = 16;

/**
 * Branchless bit-exact select: @p a when @p take_a, else @p b. The
 * bracket-update sign is a data-dependent coin flip, so a conditional
 * move instead of a branch saves a ~50% misprediction rate on large
 * batches (small repeated batches hide this — the predictor memorizes
 * the whole sweep's branch sequence).
 */
inline double
selectDouble(bool take_a, double a, double b)
{
    std::uint64_t ua;
    std::uint64_t ub;
    std::memcpy(&ua, &a, sizeof ua);
    std::memcpy(&ub, &b, sizeof ub);
    const std::uint64_t keep = take_a ? ~std::uint64_t{0} : 0;
    const std::uint64_t r = (ua & keep) | (ub & ~keep);
    double out;
    std::memcpy(&out, &r, sizeof out);
    return out;
}

/**
 * Scalar fallback for @p iters sweep iterations over the lane window;
 * the arithmetic mirrors the vector kernels (and patelStageStep)
 * exactly. Iteration-outer so the lanes' independent dependency
 * chains overlap, with branchless bracket updates.
 */
void
bisectSweepScalar(double *lo, double *hi, const double *demand,
                  const double *stagesd, unsigned lanes, unsigned iters)
{
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned l = 0; l < lanes; ++l) {
            const double mid = 0.5 * (lo[l] + hi[l]);
            double m = 1.0 - mid;
            for (double s = 0.0; s < stagesd[l]; s += 1.0) {
                m = patelStageStep(m);
            }
            const bool gt = m / demand[l] - mid > 0.0;
            lo[l] = selectDouble(gt, mid, lo[l]);
            hi[l] = selectDouble(gt, hi[l], mid);
        }
    }
}

} // namespace

void
setWarmBracketEnabled(bool enabled)
{
    warm_bracket_override.store(enabled ? 1 : 0,
                                std::memory_order_relaxed);
}

bool
warmBracketEnabled()
{
    const int mode = warm_bracket_override.load(std::memory_order_relaxed);
    if (mode >= 0) {
        return mode != 0;
    }
    return !envDisablesWarmBracket();
}

double
patelStageStep(double m)
{
    const double half = m / 2.0;
    return 1.0 - (1.0 - half) * (1.0 - half);
}

double
patelStageStepK(double m, unsigned k)
{
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }
    const double per_input = m / static_cast<double>(k);
    return 1.0 - std::pow(1.0 - per_input, static_cast<double>(k));
}

double
solveComputeFractionK(double rate, double size, unsigned stages,
                      unsigned k)
{
    if (rate <= 0.0 || size <= 0.0) {
        throw std::invalid_argument(
            "transaction rate and size must be positive");
    }
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }

    const double demand = rate * size;
    auto output = [stages, k](double m0) {
        double m = m0;
        for (unsigned i = 0; i < stages; ++i) {
            m = patelStageStepK(m, k);
        }
        return m;
    };
    auto residual = [demand, &output](double u) {
        return output(1.0 - u) / demand - u;
    };

    double lo = 0.0;
    double hi = 1.0;
    int iterations = 0;
    for (int iter = 0; iter < 200; ++iter) {
        iterations = iter + 1;
        const double mid = 0.5 * (lo + hi);
        if (residual(mid) > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-13) {
            break;
        }
    }
#if SWCC_OBS_ENABLED
    noteNetworkSolve(iterations, hi - lo);
#else
    (void)iterations;
#endif
    campaign::checkFault(campaign::FaultSite::SolverNet);
    if (!(hi - lo < 1e-6)) {
        throw campaign::SolverNonConvergence(
            "network fixed point failed to bracket U");
    }
    return 0.5 * (lo + hi);
}

unsigned
stagesForProcessorsK(unsigned processors, unsigned k)
{
    if (k < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }
    if (processors < 2) {
        return 1;
    }
    unsigned stages = 0;
    unsigned long long capacity = 1;
    while (capacity < processors) {
        capacity *= k;
        ++stages;
    }
    return stages;
}

double
patelNetworkOutput(double m0, unsigned stages)
{
    double m = m0;
    for (unsigned i = 0; i < stages; ++i) {
        m = patelStageStep(m);
    }
    return m;
}

std::vector<double>
patelStageLoads(double m0, unsigned stages)
{
    std::vector<double> loads;
    loads.reserve(stages + 1);
    double m = m0;
    loads.push_back(m);
    for (unsigned i = 0; i < stages; ++i) {
        m = patelStageStep(m);
        loads.push_back(m);
    }
    return loads;
}

double
solveComputeFraction(double rate, double size, unsigned stages)
{
    if (rate <= 0.0 || size <= 0.0) {
        throw std::invalid_argument(
            "transaction rate and size must be positive");
    }
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }

    const double demand = rate * size; // m*t, offered unit-request rate.

    // g(U) = P(1 - U)/(m t) - U; g(0) > 0, g(1) = -1, g decreasing.
    auto residual = [demand, stages](double u) {
        return patelNetworkOutput(1.0 - u, stages) / demand - u;
    };

    double lo = 0.0;
    double hi = 1.0;
    int iterations = 0;
    for (int iter = 0; iter < 200; ++iter) {
        iterations = iter + 1;
        const double mid = 0.5 * (lo + hi);
        if (residual(mid) > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-13) {
            break;
        }
    }
#if SWCC_OBS_ENABLED
    noteNetworkSolve(iterations, hi - lo);
#else
    (void)iterations;
#endif
    campaign::checkFault(campaign::FaultSite::SolverNet);
    if (!(hi - lo < 1e-6)) {
        throw campaign::SolverNonConvergence(
            "network fixed point failed to bracket U");
    }
    return 0.5 * (lo + hi);
}

void
solveComputeFractionBatch(const double *rates, const double *sizes,
                          const unsigned *stages, std::size_t count,
                          double *out)
{
    for (std::size_t j = 0; j < count; ++j) {
        if (rates[j] <= 0.0 || sizes[j] <= 0.0) {
            throw std::invalid_argument(
                "transaction rate and size must be positive");
        }
        if (stages[j] == 0) {
            throw std::invalid_argument(
                "need at least one network stage");
        }
    }

    std::vector<double> demand(count);
    for (std::size_t j = 0; j < count; ++j) {
        demand[j] = rates[j] * sizes[j];
    }

    std::vector<double> lo_all(count, 0.0);
    std::vector<double> hi_all(count, 1.0);
    std::vector<int> iters_all(count, 0);

    // Windowed sweep: a fixed block of lanes advances lock-step
    // through the bisection with one kernel call per retirement
    // batch. Every cell's convergence depth is known up front (the
    // bracket width halves exactly per step; see
    // targetBisectionDepth()), so the kernel runs the minimum
    // remaining iteration count of the window in one register-
    // resident call — no per-iteration convergence checks, loads, or
    // stores. Retired lanes are swap-compacted out and refilled from
    // the pending queue, seeding their bracket from the latest
    // converged U via the dyadic warm-bracket probe. Each cell's
    // lo/hi trajectory depends only on its own lane, so compaction
    // and padding never perturb results.
    static const unsigned target_depth = targetBisectionDepth();
    const bool vector = simd::activeIsa() != simd::Isa::Scalar;
    const bool warm = warmBracketEnabled();

    double lane_lo[kWindowLanes];
    double lane_hi[kWindowLanes];
    double lane_demand[kWindowLanes];
    double lane_stages[kWindowLanes];
    unsigned lane_remaining[kWindowLanes];
    int lane_iters[kWindowLanes];
    std::size_t lane_cell[kWindowLanes];

    unsigned active = 0;
    std::size_t next = 0;
    double hint = 0.0;
    bool have_hint = false;

    // Inert padding the kernel can chew on without side effects: the
    // zero-width bracket never moves and is never read back.
    for (unsigned l = 0; l < kWindowLanes; ++l) {
        lane_lo[l] = 0.0;
        lane_hi[l] = 0.0;
        lane_demand[l] = 1.0;
        lane_stages[l] = 1.0;
    }

    const auto refill = [&]() {
        while (active < kWindowLanes && next < count) {
            const unsigned l = active++;
            const std::size_t j = next++;
            lane_cell[l] = j;
            lane_demand[l] = demand[j];
            lane_stages[l] = static_cast<double>(stages[j]);
            lane_lo[l] = 0.0;
            lane_hi[l] = 1.0;
            unsigned start_depth = 0;
            if (warm && have_hint) {
                Bracket bracket;
                const bool hit =
                    probeWarmBracket(hint, demand[j], stages[j], bracket);
                if (hit) {
                    lane_lo[l] = bracket.lo;
                    lane_hi[l] = bracket.hi;
                    start_depth = bracket.depth;
                }
#if SWCC_OBS_ENABLED
                noteWarmProbe(hit);
#endif
            }
            lane_remaining[l] = target_depth - start_depth;
            lane_iters[l] = static_cast<int>(lane_remaining[l]);
        }
    };

    refill();
    while (active > 0) {
        unsigned run = lane_remaining[0];
        for (unsigned l = 1; l < active; ++l) {
            run = std::min(run, lane_remaining[l]);
        }
        if (vector) {
            simd::bisectSweepVector(lane_lo, lane_hi, lane_demand,
                                    lane_stages, kWindowLanes, run);
        } else {
            bisectSweepScalar(lane_lo, lane_hi, lane_demand,
                              lane_stages, kWindowLanes, run);
        }
        for (unsigned l = 0; l < active;) {
            lane_remaining[l] -= run;
            if (lane_remaining[l] == 0) {
                const std::size_t j = lane_cell[l];
                lo_all[j] = lane_lo[l];
                hi_all[j] = lane_hi[l];
                iters_all[j] = lane_iters[l];
                hint = 0.5 * (lane_lo[l] + lane_hi[l]);
                have_hint = true;
                --active;
                lane_lo[l] = lane_lo[active];
                lane_hi[l] = lane_hi[active];
                lane_demand[l] = lane_demand[active];
                lane_stages[l] = lane_stages[active];
                lane_remaining[l] = lane_remaining[active];
                lane_iters[l] = lane_iters[active];
                lane_cell[l] = lane_cell[active];
                lane_lo[active] = 0.0;
                lane_hi[active] = 0.0;
                lane_demand[active] = 1.0;
                lane_stages[active] = 1.0;
            } else {
                ++l;
            }
        }
        refill();
    }

    // Ordered epilogue: observability, fault injection, and the
    // convergence check fire in index order exactly as the per-point
    // solver sequence would.
    for (std::size_t j = 0; j < count; ++j) {
#if SWCC_OBS_ENABLED
        noteNetworkSolve(iters_all[j], hi_all[j] - lo_all[j]);
#endif
        campaign::checkFault(campaign::FaultSite::SolverNet);
        if (!(hi_all[j] - lo_all[j] < 1e-6)) {
            throw campaign::SolverNonConvergence(
                "network fixed point failed to bracket U");
        }
        out[j] = 0.5 * (lo_all[j] + hi_all[j]);
    }
}

NetworkSolution
solveNetwork(const PerInstructionCost &cost, unsigned stages)
{
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    if (cost.channel < 0.0 || cost.cpu <= cost.channel) {
        throw std::invalid_argument(
            "per-instruction cost must satisfy 0 <= b < c");
    }

    NetworkSolution sol;
    sol.stages = stages;
    sol.processors = 1u << stages;
    sol.cpu = cost.cpu;
    sol.network = cost.channel;

    const double think = cost.thinkTime();
    sol.transactionRate = 1.0 / think;

    if (cost.channel == 0.0) {
        // The workload never touches the network.
        sol.unitRequestRate = 0.0;
        sol.computeFraction = 1.0;
        sol.inputLoad = 0.0;
        sol.acceptance = 1.0;
        sol.cyclesPerInstruction = cost.cpu;
        sol.waiting = 0.0;
        sol.processorUtilization = 1.0 / cost.cpu;
        sol.processingPower =
            static_cast<double>(sol.processors) * sol.processorUtilization;
        return sol;
    }

    sol.unitRequestRate = sol.transactionRate * cost.channel;
    sol.computeFraction =
        solveComputeFraction(sol.transactionRate, cost.channel, stages);
    sol.inputLoad = 1.0 - sol.computeFraction;
    sol.acceptance = sol.inputLoad > 0.0
        ? patelNetworkOutput(sol.inputLoad, stages) / sol.inputLoad
        : 1.0;
    sol.cyclesPerInstruction = think / sol.computeFraction;
    sol.waiting = sol.cyclesPerInstruction - cost.cpu;
    sol.processorUtilization = 1.0 / sol.cyclesPerInstruction;
    sol.processingPower =
        static_cast<double>(sol.processors) * sol.processorUtilization;
    return sol;
}

std::vector<NetworkSolution>
solveNetworkCurve(const std::vector<PerInstructionCost> &costs,
                  unsigned first_stage)
{
    if (first_stage == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    const std::size_t n = costs.size();
    std::vector<NetworkSolution> curve(n);

    // Gather the points that need the fixed point into contiguous
    // arrays for one batched bisection sweep.
    std::vector<double> rates;
    std::vector<double> sizes;
    std::vector<unsigned> point_stages;
    std::vector<std::size_t> where;
    rates.reserve(n);
    sizes.reserve(n);
    point_stages.reserve(n);
    where.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        const PerInstructionCost &cost = costs[i];
        const unsigned stages =
            first_stage + static_cast<unsigned>(i);
        if (cost.channel < 0.0 || cost.cpu <= cost.channel) {
            throw std::invalid_argument(
                "per-instruction cost must satisfy 0 <= b < c");
        }

        NetworkSolution &sol = curve[i];
        sol.stages = stages;
        sol.processors = 1u << stages;
        sol.cpu = cost.cpu;
        sol.network = cost.channel;

        const double think = cost.thinkTime();
        sol.transactionRate = 1.0 / think;

        if (cost.channel == 0.0) {
            // The workload never touches the network.
            sol.unitRequestRate = 0.0;
            sol.computeFraction = 1.0;
            sol.inputLoad = 0.0;
            sol.acceptance = 1.0;
            sol.cyclesPerInstruction = cost.cpu;
            sol.waiting = 0.0;
            sol.processorUtilization = 1.0 / cost.cpu;
            sol.processingPower = static_cast<double>(sol.processors) *
                sol.processorUtilization;
            continue;
        }

        sol.unitRequestRate = sol.transactionRate * cost.channel;
        rates.push_back(sol.transactionRate);
        sizes.push_back(cost.channel);
        point_stages.push_back(stages);
        where.push_back(i);
    }

    if (!where.empty()) {
        std::vector<double> fractions(where.size());
        solveComputeFractionBatch(rates.data(), sizes.data(),
                                  point_stages.data(), where.size(),
                                  fractions.data());
        for (std::size_t j = 0; j < where.size(); ++j) {
            NetworkSolution &sol = curve[where[j]];
            const double think = sol.cpu - sol.network;
            sol.computeFraction = fractions[j];
            sol.inputLoad = 1.0 - sol.computeFraction;
            sol.acceptance = sol.inputLoad > 0.0
                ? patelNetworkOutput(sol.inputLoad, sol.stages) /
                    sol.inputLoad
                : 1.0;
            sol.cyclesPerInstruction = think / sol.computeFraction;
            sol.waiting = sol.cyclesPerInstruction - sol.cpu;
            sol.processorUtilization = 1.0 / sol.cyclesPerInstruction;
            sol.processingPower = static_cast<double>(sol.processors) *
                sol.processorUtilization;
        }
    }
    return curve;
}

unsigned
stagesForProcessors(unsigned processors)
{
    if (processors < 2) {
        return 1;
    }
    unsigned stages = 0;
    unsigned capacity = 1;
    while (capacity < processors) {
        capacity *= 2;
        ++stages;
    }
    return stages;
}

} // namespace swcc
