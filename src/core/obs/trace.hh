/**
 * @file
 * Span tracing with Chrome trace-event / Perfetto JSON emission.
 *
 * Threads record fixed-size span/instant/counter records into
 * per-thread ring buffers; nothing is formatted, allocated, or locked
 * on the recording path. When the ring wraps, the oldest records are
 * overwritten (and counted), bounding memory for arbitrarily long
 * runs. writeChromeTrace() — called once, from a quiescent point at
 * the end of a run — merges the rings, sorts each (pid, tid) stream
 * by timestamp, repairs any B/E pairs split by ring wrap, and emits
 * `{"traceEvents": [...]}` JSON loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Two time domains share one file:
 *  - wall time (pid 1): pool tasks, solver calls, harness phases;
 *    timestamps are microseconds since the recorder was created;
 *  - simulated time (pid 2, 3, ... — one pid per simulator run):
 *    per-CPU retire/bus spans with timestamps in *cycles* (1 cycle
 *    rendered as 1 us), giving a flame-style timeline of where the
 *    simulated machine spent its cycles.
 *
 * The recorder starts disabled: every instrumentation site guards on
 * enabled() (or a cached pointer), so the cost of compiled-in but
 * runtime-disabled tracing is a single predictable branch. Under
 * SWCC_OBS=OFF the recording functions compile to nothing and
 * enabled() is constant false, so the guarded blocks fold away.
 */

#ifndef SWCC_CORE_OBS_TRACE_HH
#define SWCC_CORE_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef SWCC_OBS_ENABLED
#define SWCC_OBS_ENABLED 1
#endif

namespace swcc::obs
{

/** One ring-buffer record; kind selects which fields are meaningful. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        Complete,   ///< X event: ts + dur.
        Begin,      ///< B event: ts.
        End,        ///< E event: ts.
        Instant,    ///< i event: ts.
        Counter,    ///< C event: ts + value (stored in dur).
        FlowStart,  ///< s event: ts + id; binds to the enclosing slice.
        FlowStep,   ///< t event: ts + id.
        FlowEnd,    ///< f event: ts + id.
        AsyncBegin, ///< b event: ts + id; matched cross-thread by id.
        AsyncEnd,   ///< e event: ts + id.
    };

    double ts = 0.0;
    double dur = 0.0; ///< Duration (Complete) or value (Counter).
    std::uint32_t name = 0;
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    Kind kind = Kind::Complete;
    /** Flow/async correlation id (e.g. a service trace id). */
    std::uint64_t id = 0;
};

/**
 * The process-wide span recorder (see file comment).
 *
 * Recording functions append to the calling thread's ring and are
 * safe to call concurrently from any number of threads; they do NOT
 * check enabled() — instrumentation sites gate on it so the disabled
 * cost stays one branch. writeChromeTrace()/clearForTest() must be
 * called from a quiescent point (no thread mid-record).
 */
class TraceRecorder
{
  public:
    /** The wall-clock process id in emitted traces. */
    static constexpr std::int32_t kWallPid = 1;

    /** Whether instrumentation sites should record. */
    bool
    enabled() const
    {
#if SWCC_OBS_ENABLED
        return enabled_.load(std::memory_order_relaxed);
#else
        return false;
#endif
    }

    /** Enables/disables recording (no-op under SWCC_OBS=OFF). */
    void setEnabled(bool on);

    /** Interns @p name, returning a stable id for record* calls. */
    std::uint32_t intern(std::string_view name);

    /** Microseconds of wall time since the recorder was created. */
    double
    nowUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    /** This thread's wall-domain tid (creates the ring on first use). */
    std::int32_t callerTid();

    void recordComplete(std::uint32_t name, std::int32_t pid,
                        std::int32_t tid, double ts, double dur);
    void recordBegin(std::uint32_t name, std::int32_t pid,
                     std::int32_t tid, double ts);
    void recordEnd(std::int32_t pid, std::int32_t tid, double ts);
    void recordInstant(std::uint32_t name, std::int32_t pid,
                       std::int32_t tid, double ts);
    void recordCounter(std::uint32_t name, std::int32_t pid,
                       std::int32_t tid, double ts, double value);

    /**
     * Flow events ("s"/"t"/"f", cat "swcc.flow") draw arrows between
     * the slices enclosing their timestamps across threads; all three
     * must share @p name and @p id. Async events ("b"/"e", cat
     * "swcc.async") render an [begin, end) interval matched by @p id
     * even when begin and end land on different threads.
     */
    void recordFlowStart(std::uint32_t name, std::int32_t pid,
                         std::int32_t tid, double ts, std::uint64_t id);
    void recordFlowStep(std::uint32_t name, std::int32_t pid,
                        std::int32_t tid, double ts, std::uint64_t id);
    void recordFlowEnd(std::uint32_t name, std::int32_t pid,
                       std::int32_t tid, double ts, std::uint64_t id);
    void recordAsyncBegin(std::uint32_t name, std::int32_t pid,
                          std::int32_t tid, double ts,
                          std::uint64_t id);
    void recordAsyncEnd(std::uint32_t name, std::int32_t pid,
                        std::int32_t tid, double ts, std::uint64_t id);

    /** Names a process/thread in the emitted trace (M events). */
    void setProcessName(std::int32_t pid, std::string name);
    void setThreadName(std::int32_t pid, std::int32_t tid,
                       std::string name);

    /** A fresh simulated-time pid (2, 3, ...), one per simulator run. */
    std::int32_t nextSimPid();

    /** Records overwritten by ring wrap since the last clear. */
    std::uint64_t droppedRecords() const;

    /** Ring capacity (records per thread) for rings created later. */
    void setRingCapacity(std::size_t records);

    /** Emits the merged Chrome trace-event JSON. Quiescent only. */
    void writeChromeTrace(std::ostream &os) const;

    /** Empties all rings and metadata; interned names persist. */
    void clearForTest();

  private:
    struct Ring
    {
        explicit Ring(std::size_t cap, std::int32_t tid_)
            : records(cap), tid(tid_)
        {
        }
        std::vector<TraceRecord> records;
        /** Total appends ever; slot = count % capacity (drop-oldest). */
        std::atomic<std::uint64_t> count{0};
        std::int32_t tid;
    };

    Ring &localRing();
    void append(const TraceRecord &record);

    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    std::atomic<bool> enabled_{false};
    std::atomic<std::int32_t> nextSimPid_{2};
    std::atomic<std::size_t> ringCapacity_{1u << 16};

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::vector<std::string> names_;
    std::int32_t nextTid_ = 1;
    std::vector<std::pair<std::int32_t, std::string>> processNames_;
    /** ((pid, tid), name) */
    std::vector<std::pair<std::pair<std::int32_t, std::int32_t>,
                          std::string>>
        threadNames_;
};

/** The process-wide recorder. */
TraceRecorder &tracer();

/**
 * RAII X-event span on the calling thread's wall-time track. Costs
 * one branch when tracing is disabled; compiles out entirely under
 * SWCC_OBS=OFF.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::uint32_t name)
    {
#if SWCC_OBS_ENABLED
        if (tracer().enabled()) {
            name_ = name;
            start_ = tracer().nowUs();
        }
#else
        (void)name;
#endif
    }

    ~ScopedSpan()
    {
#if SWCC_OBS_ENABLED
        if (start_ >= 0.0) {
            TraceRecorder &trc = tracer();
            trc.recordComplete(name_, TraceRecorder::kWallPid,
                               trc.callerTid(), start_,
                               trc.nowUs() - start_);
        }
#endif
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
#if SWCC_OBS_ENABLED
    double start_ = -1.0;
    std::uint32_t name_ = 0;
#endif
};

/**
 * RAII B/E phase on the calling thread's wall-time track. Phases are
 * the coarse, human-named sections of a run ("generate traces",
 * "simulate", "solve") — few, strictly nested, and emitted as
 * explicit Begin/End pairs.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string_view name)
    {
#if SWCC_OBS_ENABLED
        TraceRecorder &trc = tracer();
        if (trc.enabled()) {
            active_ = true;
            trc.recordBegin(trc.intern(name), TraceRecorder::kWallPid,
                            trc.callerTid(), trc.nowUs());
        }
#else
        (void)name;
#endif
    }

    ~ScopedPhase()
    {
#if SWCC_OBS_ENABLED
        if (active_) {
            TraceRecorder &trc = tracer();
            trc.recordEnd(TraceRecorder::kWallPid, trc.callerTid(),
                          trc.nowUs());
        }
#endif
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
#if SWCC_OBS_ENABLED
    bool active_ = false;
#endif
};

/**
 * Writes the recorder's Chrome trace to @p path, returning @p path.
 * @throws std::runtime_error if the file cannot be written.
 */
std::string writeChromeTraceFile(const std::string &path);

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_TRACE_HH
