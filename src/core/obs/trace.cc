#include "core/obs/trace.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/campaign/atomic_file.hh"
#include "core/obs/json.hh"
#include "core/obs/log.hh"

namespace swcc::obs
{

namespace
{

std::string
renderTs(double value)
{
    std::ostringstream os;
    os.precision(15);
    os << value;
    return os.str();
}

} // namespace

TraceRecorder &
tracer()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::setEnabled(bool on)
{
#if SWCC_OBS_ENABLED
    enabled_.store(on, std::memory_order_relaxed);
    if (on) {
        setProcessName(kWallPid, "swcc");
    }
#else
    (void)on;
#endif
}

std::uint32_t
TraceRecorder::intern(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) {
            return static_cast<std::uint32_t>(i);
        }
    }
    names_.emplace_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

TraceRecorder::Ring &
TraceRecorder::localRing()
{
    // Safe raw cache: rings are owned by the process-lifetime recorder
    // and survive clearForTest() (which only empties them).
    thread_local Ring *cached = nullptr;
    if (cached == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto ring = std::make_unique<Ring>(
            ringCapacity_.load(std::memory_order_relaxed), nextTid_++);
        cached = ring.get();
        rings_.push_back(std::move(ring));
    }
    return *cached;
}

std::int32_t
TraceRecorder::callerTid()
{
    return localRing().tid;
}

void
TraceRecorder::append(const TraceRecord &record)
{
#if SWCC_OBS_ENABLED
    Ring &ring = localRing();
    const std::uint64_t n =
        ring.count.load(std::memory_order_relaxed);
    ring.records[n % ring.records.size()] = record;
    // Release so a quiescent-point reader sees the record contents.
    ring.count.store(n + 1, std::memory_order_release);
#else
    (void)record;
#endif
}

void
TraceRecorder::recordComplete(std::uint32_t name, std::int32_t pid,
                              std::int32_t tid, double ts, double dur)
{
    append({ts, dur, name, pid, tid, TraceRecord::Kind::Complete});
}

void
TraceRecorder::recordBegin(std::uint32_t name, std::int32_t pid,
                           std::int32_t tid, double ts)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::Begin});
}

void
TraceRecorder::recordEnd(std::int32_t pid, std::int32_t tid, double ts)
{
    append({ts, 0.0, 0, pid, tid, TraceRecord::Kind::End});
}

void
TraceRecorder::recordInstant(std::uint32_t name, std::int32_t pid,
                             std::int32_t tid, double ts)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::Instant});
}

void
TraceRecorder::recordCounter(std::uint32_t name, std::int32_t pid,
                             std::int32_t tid, double ts, double value)
{
    append({ts, value, name, pid, tid, TraceRecord::Kind::Counter});
}

void
TraceRecorder::recordFlowStart(std::uint32_t name, std::int32_t pid,
                               std::int32_t tid, double ts,
                               std::uint64_t id)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::FlowStart, id});
}

void
TraceRecorder::recordFlowStep(std::uint32_t name, std::int32_t pid,
                              std::int32_t tid, double ts,
                              std::uint64_t id)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::FlowStep, id});
}

void
TraceRecorder::recordFlowEnd(std::uint32_t name, std::int32_t pid,
                             std::int32_t tid, double ts,
                             std::uint64_t id)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::FlowEnd, id});
}

void
TraceRecorder::recordAsyncBegin(std::uint32_t name, std::int32_t pid,
                                std::int32_t tid, double ts,
                                std::uint64_t id)
{
    append(
        {ts, 0.0, name, pid, tid, TraceRecord::Kind::AsyncBegin, id});
}

void
TraceRecorder::recordAsyncEnd(std::uint32_t name, std::int32_t pid,
                              std::int32_t tid, double ts,
                              std::uint64_t id)
{
    append({ts, 0.0, name, pid, tid, TraceRecord::Kind::AsyncEnd, id});
}

void
TraceRecorder::setProcessName(std::int32_t pid, std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[known, existing] : processNames_) {
        if (known == pid) {
            existing = std::move(name);
            return;
        }
    }
    processNames_.emplace_back(pid, std::move(name));
}

void
TraceRecorder::setThreadName(std::int32_t pid, std::int32_t tid,
                             std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[known, existing] : threadNames_) {
        if (known.first == pid && known.second == tid) {
            existing = std::move(name);
            return;
        }
    }
    threadNames_.emplace_back(std::make_pair(pid, tid),
                              std::move(name));
}

std::int32_t
TraceRecorder::nextSimPid()
{
    return nextSimPid_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
TraceRecorder::droppedRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &ring : rings_) {
        const std::uint64_t n =
            ring->count.load(std::memory_order_acquire);
        const std::uint64_t cap = ring->records.size();
        dropped += n > cap ? n - cap : 0;
    }
    return dropped;
}

void
TraceRecorder::setRingCapacity(std::size_t records)
{
    ringCapacity_.store(std::max<std::size_t>(records, 16),
                        std::memory_order_relaxed);
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Partition every surviving record into (pid, tid) streams,
    // oldest-first within each ring so ties keep their append order.
    std::map<std::pair<std::int32_t, std::int32_t>,
             std::vector<TraceRecord>>
        streams;
    for (const auto &ring : rings_) {
        const std::uint64_t n =
            ring->count.load(std::memory_order_acquire);
        const std::uint64_t cap = ring->records.size();
        const std::uint64_t first = n > cap ? n - cap : 0;
        for (std::uint64_t i = first; i < n; ++i) {
            const TraceRecord &record = ring->records[i % cap];
            streams[{record.pid, record.tid}].push_back(record);
        }
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first_event = true;
    const auto emit = [&](const std::string &body) {
        if (!first_event) {
            os << ',';
        }
        first_event = false;
        os << '{' << body << '}';
    };

    for (const auto &[pid, name] : processNames_) {
        emit("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"args\":{\"name\":\"" +
             jsonEscape(name) + "\"}");
    }
    for (const auto &[key, name] : threadNames_) {
        emit("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(key.first) +
             ",\"tid\":" + std::to_string(key.second) +
             ",\"args\":{\"name\":\"" + jsonEscape(name) + "\"}");
    }

    for (auto &[key, records] : streams) {
        // Records land in the ring at span *end*; sort each stream by
        // start timestamp so readers see non-decreasing ts. The sort
        // is stable, so same-ts records keep their append order —
        // which is exactly the nesting order for B/E phases.
        std::stable_sort(records.begin(), records.end(),
                         [](const TraceRecord &a,
                            const TraceRecord &b) {
                             return a.ts < b.ts;
                         });

        const std::string common = ",\"pid\":" +
            std::to_string(key.first) +
            ",\"tid\":" + std::to_string(key.second);

        // Ring wrap can orphan an E (its B overwritten); drop those
        // and close any still-open B at the stream's last timestamp
        // so emitted B/E are balanced by construction.
        std::uint64_t depth = 0;
        double last_ts = 0.0;
        for (const TraceRecord &record : records) {
            last_ts = std::max(last_ts, record.ts + record.dur);
            const std::string name = record.name < names_.size()
                                         ? names_[record.name]
                                         : std::string();
            switch (record.kind) {
              case TraceRecord::Kind::Complete:
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"cat\":\"swcc\",\"ph\":\"X\",\"ts\":" +
                     renderTs(record.ts) +
                     ",\"dur\":" + renderTs(record.dur) + common);
                break;
              case TraceRecord::Kind::Begin:
                ++depth;
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"cat\":\"swcc\",\"ph\":\"B\",\"ts\":" +
                     renderTs(record.ts) + common);
                break;
              case TraceRecord::Kind::End:
                if (depth == 0) {
                    break; // Orphaned by ring wrap.
                }
                --depth;
                emit("\"ph\":\"E\",\"ts\":" + renderTs(record.ts) +
                     common);
                break;
              case TraceRecord::Kind::Instant:
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"cat\":\"swcc\",\"ph\":\"i\",\"s\":\"t\","
                     "\"ts\":" +
                     renderTs(record.ts) + common);
                break;
              case TraceRecord::Kind::Counter:
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"ph\":\"C\",\"ts\":" + renderTs(record.ts) +
                     ",\"args\":{\"value\":" + renderTs(record.dur) +
                     '}' + common);
                break;
              case TraceRecord::Kind::FlowStart:
              case TraceRecord::Kind::FlowStep:
              case TraceRecord::Kind::FlowEnd: {
                const char ph =
                    record.kind == TraceRecord::Kind::FlowStart ? 's'
                    : record.kind == TraceRecord::Kind::FlowStep
                        ? 't'
                        : 'f';
                std::string body = "\"name\":\"" + jsonEscape(name) +
                    "\",\"cat\":\"swcc.flow\",\"ph\":\"" + ph +
                    "\",\"id\":" + std::to_string(record.id) +
                    ",\"ts\":" + renderTs(record.ts);
                if (ph == 'f') {
                    // Bind the arrow head to the slice *enclosing*
                    // the end timestamp, not the next slice to start.
                    body += ",\"bp\":\"e\"";
                }
                emit(body + common);
                break;
              }
              case TraceRecord::Kind::AsyncBegin:
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"cat\":\"swcc.async\",\"ph\":\"b\",\"id\":" +
                     std::to_string(record.id) +
                     ",\"ts\":" + renderTs(record.ts) + common);
                break;
              case TraceRecord::Kind::AsyncEnd:
                emit("\"name\":\"" + jsonEscape(name) +
                     "\",\"cat\":\"swcc.async\",\"ph\":\"e\",\"id\":" +
                     std::to_string(record.id) +
                     ",\"ts\":" + renderTs(record.ts) + common);
                break;
            }
        }
        for (; depth > 0; --depth) {
            emit("\"ph\":\"E\",\"ts\":" + renderTs(last_ts) + common);
        }
    }
    os << "]}\n";
}

void
TraceRecorder::clearForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &ring : rings_) {
        ring->count.store(0, std::memory_order_relaxed);
    }
    processNames_.clear();
    threadNames_.clear();
    nextSimPid_.store(2, std::memory_order_relaxed);
}

std::string
writeChromeTraceFile(const std::string &path)
{
    const std::uint64_t dropped = tracer().droppedRecords();
    if (dropped > 0) {
        SWCC_LOG_INFO("trace ring overwrote " +
                      std::to_string(dropped) +
                      " oldest records; timeline is truncated");
    }
    campaign::atomicWriteFile(
        path, [&](std::ostream &os) { tracer().writeChromeTrace(os); });
    return path;
}

} // namespace swcc::obs
