/**
 * @file
 * Umbrella header and run-level configuration for observability.
 *
 * The obs subsystem has three pillars (each usable on its own):
 *
 *  - metrics.hh — counters / gauges / histograms, exported to JSON or
 *    CSV via `--metrics-out`;
 *  - trace.hh — span tracing emitted as Chrome trace-event JSON via
 *    `--trace-json`, loadable in Perfetto;
 *  - log.hh / progress.hh — leveled stderr logging (`--log-level`)
 *    and throttled progress lines (`--progress`).
 *
 * This header adds the glue every entry point (swcc CLI, bench
 * harnesses) shares: a CliConfig describing the four flags, helpers
 * to source it from the environment and argv, and finalize() which
 * writes the requested artifacts once at process end.
 *
 * Instrumentation compiles out under `cmake -DSWCC_OBS=OFF`; the
 * flags remain accepted and finalize() still writes (empty but valid)
 * artifacts so tooling works identically in both builds.
 */

#ifndef SWCC_CORE_OBS_OBS_HH
#define SWCC_CORE_OBS_OBS_HH

#include <functional>
#include <string>

#include "core/obs/json.hh"
#include "core/obs/log.hh"
#include "core/obs/metrics.hh"
#include "core/obs/progress.hh"
#include "core/obs/trace.hh"

namespace swcc::obs
{

/** True when instrumentation was compiled in (SWCC_OBS=ON). */
constexpr bool
compiledIn()
{
    return SWCC_OBS_ENABLED != 0;
}

/** The four observability flags shared by every entry point. */
struct CliConfig
{
    std::string metricsOut; ///< `--metrics-out`; empty = no export.
    std::string traceJson;  ///< `--trace-json`; empty = no trace.
    bool progress = false;  ///< `--progress`.
    std::string logLevel;   ///< `--log-level`; empty = keep default.
};

/**
 * A CliConfig sourced from the environment: SWCC_METRICS_OUT,
 * SWCC_TRACE_JSON, SWCC_PROGRESS (1/true/yes/on), SWCC_LOG_LEVEL.
 * Explicit command-line flags should overwrite these fields.
 */
CliConfig envConfig();

/**
 * Applies @p config: sets the log level, enables the tracer and
 * progress reporting, and remembers the output paths for finalize().
 *
 * @throws std::invalid_argument on an unknown log level.
 */
void applyCli(const CliConfig &config);

/**
 * Extracts the observability flags from a main()-style argument
 * vector (both `--flag=value` and `--flag value` forms), leaving all
 * other arguments in place, then applies env config overlaid with the
 * extracted flags. For bench harnesses whose remaining argument
 * parsing is ad hoc.
 *
 * @throws std::invalid_argument on a flag with a missing value or an
 *         unknown log level.
 */
void consumeArgs(int &argc, char **argv);

/**
 * Registers @p hook to run at the start of finalize(), before
 * artifacts are written. Used by subsystems (e.g. the thread pool) to
 * publish their final gauge values without obs depending on them.
 */
void addFinalizeHook(std::function<void()> hook);

/**
 * Writes the artifacts requested by applyCli()/consumeArgs(): the
 * metrics dump and the Chrome trace. Runs finalize hooks first.
 * Idempotent — a second call writes nothing until applyCli() runs
 * again.
 *
 * @throws std::runtime_error if an artifact cannot be written.
 */
void finalize();

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_OBS_HH
