/**
 * @file
 * Structured leveled logger.
 *
 * A tiny stderr logger shared by every layer: parse rejects, silent
 * fallbacks, and diagnostic chatter all flow through one levelled
 * sink instead of being dropped or buried in exception text. The
 * macros capture the call site (file:line), evaluate their message
 * expression only when the level is enabled, and cost a single
 * relaxed atomic load otherwise — cheap enough for cold and warm
 * paths alike (the simulator's per-retire hot loop uses the span /
 * metrics macros, never the logger).
 *
 * The level is taken from, in priority order, setLogLevel() (the
 * CLI's `--log-level`), the SWCC_LOG_LEVEL environment variable, and
 * the default (warn). Unlike the metrics and span instrumentation the
 * logger stays functional under SWCC_OBS=OFF: replacing a silent
 * failure with a warning is diagnostics, not instrumentation.
 */

#ifndef SWCC_CORE_OBS_LOG_HH
#define SWCC_CORE_OBS_LOG_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace swcc::obs
{

/** Log severity, ordered least to most severe. */
enum class LogLevel : int
{
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5,
};

/** Lower-case level name ("warn"); "off" for LogLevel::Off. */
std::string_view logLevelName(LogLevel level);

/** Parses "trace".."error"/"off" (case-sensitive); nullopt otherwise. */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/** The currently active level (messages below it are discarded). */
LogLevel logLevel();

/** Overrides the active level (wins over SWCC_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** True if a message at @p level would currently be emitted. */
bool logEnabled(LogLevel level);

/**
 * Redirects log output (default and nullptr: stderr). The stream must
 * outlive all logging; intended for tests capturing into a
 * stringstream.
 */
void setLogSink(std::ostream *sink);

/**
 * Emits one line: `[level] file:line: message`. @p file is trimmed to
 * its basename. Thread-safe (one line is written atomically).
 * Prefer the SWCC_LOG_* macros, which check the level first.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &message);

} // namespace swcc::obs

/** Logs @p msg (a std::string expression, evaluated lazily). */
#define SWCC_LOG_AT(level, msg)                                         \
    do {                                                                \
        if (::swcc::obs::logEnabled(level)) {                           \
            ::swcc::obs::logMessage((level), __FILE__, __LINE__,        \
                                    (msg));                             \
        }                                                               \
    } while (0)

#define SWCC_LOG_DEBUG(msg) SWCC_LOG_AT(::swcc::obs::LogLevel::Debug, msg)
#define SWCC_LOG_INFO(msg) SWCC_LOG_AT(::swcc::obs::LogLevel::Info, msg)
#define SWCC_LOG_WARN(msg) SWCC_LOG_AT(::swcc::obs::LogLevel::Warn, msg)
#define SWCC_LOG_ERROR(msg) SWCC_LOG_AT(::swcc::obs::LogLevel::Error, msg)

#endif // SWCC_CORE_OBS_LOG_HH
