/**
 * @file
 * Metrics registry: counters, gauges, and fixed-bucket histograms.
 *
 * Each thread records into its own shard — a flat array of relaxed
 * atomic cells allocated on first touch — so recording never takes a
 * lock and never shares a cache line with another thread. Shards are
 * merged only at snapshot time (export, end of run), which is the one
 * moment the registry mutex is held.
 *
 * Metric objects are registered by name and live for the process
 * lifetime; hot call sites should cache the reference once:
 *
 * @code
 *   static obs::Counter &solves =
 *       obs::metrics().counter("solver.bus.solves");
 *   solves.add();
 * @endcode
 *
 * Under SWCC_OBS=OFF every recording call compiles to nothing; the
 * registry itself remains linkable so exports produce empty (but
 * valid) artifacts.
 */

#ifndef SWCC_CORE_OBS_METRICS_HH
#define SWCC_CORE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef SWCC_OBS_ENABLED
#define SWCC_OBS_ENABLED 1
#endif

namespace swcc::obs
{

class MetricsRegistry;

/** One merged metric as reported by MetricsRegistry::snapshot(). */
struct MetricSnapshot
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    Kind kind = Kind::Counter;

    /** Counter total or gauge value. */
    double value = 0.0;

    /** Histogram bucket upper bounds (last bucket is +inf). */
    std::vector<double> bounds;
    /** Histogram bucket counts; bounds.size() + 1 entries. */
    std::vector<std::uint64_t> counts;
    /** Histogram observation count. */
    std::uint64_t count = 0;
    /** Histogram observation sum. */
    double sum = 0.0;
};

/** A monotonic counter. */
class Counter
{
  public:
    /** Adds @p n; lock-free, wait-free per thread. */
    inline void add(std::uint64_t n = 1);

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry &owner, std::uint32_t cell)
        : owner_(&owner), cell_(cell)
    {
    }

    MetricsRegistry *owner_;
    std::uint32_t cell_;
};

/** A last-write-wins instantaneous value (single global cell). */
class Gauge
{
  public:
    inline void set(double value);
    inline double value() const;

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<double> value_{0.0};
};

/** A fixed-bucket histogram (bucket per upper bound, plus +inf). */
class Histogram
{
  public:
    /** Records @p value into its bucket; lock-free. */
    inline void observe(double value);

    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry &owner, std::vector<double> bounds,
              std::uint32_t first_cell, std::uint32_t sum_cell)
        : owner_(&owner), bounds_(std::move(bounds)),
          firstCell_(first_cell), sumCell_(sum_cell)
    {
    }

    MetricsRegistry *owner_;
    std::vector<double> bounds_;
    std::uint32_t firstCell_;
    std::uint32_t sumCell_;
};

/**
 * The process-wide metric registry (see file comment).
 *
 * Registration (counter()/gauge()/histogram()) takes the registry
 * mutex and is idempotent by name; recording through the returned
 * objects is lock-free.
 */
class MetricsRegistry
{
  public:
    /** Cells available across all counters and histogram buckets. */
    static constexpr std::uint32_t kMaxCells = 4096;
    /** Histogram sum slots available. */
    static constexpr std::uint32_t kMaxSums = 256;

    /**
     * The named counter, created on first use.
     * @throws std::logic_error if @p name is registered as another
     *         kind, or the cell space is exhausted.
     */
    Counter &counter(std::string_view name);

    /** The named gauge, created on first use. */
    Gauge &gauge(std::string_view name);

    /**
     * The named histogram, created on first use with strictly
     * increasing @p bounds (at most 64 buckets).
     */
    Histogram &histogram(std::string_view name,
                         std::vector<double> bounds);

    /** Merges all shards into one value per metric, sorted by name. */
    std::vector<MetricSnapshot> snapshot() const;

    /** Zeroes every cell and gauge; registrations persist. Tests. */
    void resetForTest();

    /** @internal Hot-path cell accessors (this thread's shard). */
    std::atomic<std::uint64_t> &cell(std::uint32_t idx);
    std::atomic<double> &sumCell(std::uint32_t idx);

  private:
    friend MetricsRegistry &metrics();
    MetricsRegistry() = default;

    struct Shard
    {
        std::vector<std::atomic<std::uint64_t>> cells;
        std::vector<std::atomic<double>> sums;
        Shard() : cells(kMaxCells), sums(kMaxSums) {}
    };

    struct Entry
    {
        std::string name;
        MetricSnapshot::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Shard &localShard();
    Entry *findEntry(std::string_view name);

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint32_t nextCell_ = 0;
    std::uint32_t nextSum_ = 0;
};

/** The process-wide registry. */
MetricsRegistry &metrics();

inline void
Counter::add(std::uint64_t n)
{
#if SWCC_OBS_ENABLED
    owner_->cell(cell_).fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
}

inline void
Gauge::set(double value)
{
#if SWCC_OBS_ENABLED
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
}

inline double
Gauge::value() const
{
    return value_.load(std::memory_order_relaxed);
}

inline void
Histogram::observe(double value)
{
#if SWCC_OBS_ENABLED
    std::uint32_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket]) {
        ++bucket;
    }
    owner_->cell(firstCell_ + bucket)
        .fetch_add(1, std::memory_order_relaxed);
    auto &sum = owner_->sumCell(sumCell_);
    sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
}

/**
 * Serializes a snapshot of the process registry as JSON
 * (`{"metrics": [...]}`) or CSV (name,kind,value,count,sum rows).
 */
void writeMetricsJson(std::ostream &os);
void writeMetricsCsv(std::ostream &os);

/**
 * Writes the registry snapshot to @p path — CSV when the path ends in
 * ".csv", JSON otherwise. Returns @p path.
 * @throws std::runtime_error if the file cannot be written.
 */
std::string writeMetricsFile(const std::string &path);

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_METRICS_HH
