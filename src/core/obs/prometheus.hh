/**
 * @file
 * Prometheus text-exposition rendering for metric snapshots.
 *
 * The renderer works on `MetricSnapshot` values, not on the live
 * registry, so the same code path serves both the process-wide
 * registry export (`--metrics-out foo.prom`) and the swccd scrape
 * endpoint, which mixes registry snapshots with manually sampled
 * daemon gauges and merged per-worker latency histograms. Everything
 * here is plain string formatting and stays fully functional under
 * SWCC_OBS=OFF.
 *
 * Naming follows the exposition-format rules: dots and any other
 * character outside [a-zA-Z0-9_:] map to '_', counters gain a
 * `_total` suffix, histograms expand to cumulative `_bucket{le=...}`
 * series plus `_sum`/`_count` with a mandatory `+Inf` bucket.
 */

#ifndef SWCC_CORE_OBS_PROMETHEUS_HH
#define SWCC_CORE_OBS_PROMETHEUS_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/obs/metrics.hh"

namespace swcc::obs
{

/**
 * Sanitizes @p name for the exposition format: '.' and every other
 * character outside [a-zA-Z0-9_:] become '_'; a leading digit is
 * prefixed with '_'.
 */
std::string promMetricName(std::string_view name);

/** Escapes a label value: backslash, double quote, and newline. */
std::string promEscapeLabel(std::string_view value);

/**
 * The metric family name @p snap will be emitted under: the
 * sanitized name, plus "_total" for counters. Used to deduplicate
 * when manual samples and registry snapshots describe the same
 * metric.
 */
std::string promFamilyName(const MetricSnapshot &snap);

/** Appends one snapshot (TYPE line + samples) to @p out. */
void appendPrometheus(std::string &out, const MetricSnapshot &snap);

/** Renders a whole snapshot list in text-exposition format. */
std::string
renderPrometheus(const std::vector<MetricSnapshot> &snaps);

/** Writes the process registry in text-exposition format. */
void writeMetricsPrometheus(std::ostream &os);

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_PROMETHEUS_HH
