#include "core/obs/obs.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace swcc::obs
{

namespace
{

std::mutex state_mutex;
std::string pending_metrics_out;
std::string pending_trace_json;
std::vector<std::function<void()>> finalize_hooks;

std::string
envString(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
}

bool
envFlag(const char *name)
{
    std::string value = envString(name);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return value == "1" || value == "true" || value == "yes" ||
           value == "on";
}

} // namespace

CliConfig
envConfig()
{
    CliConfig config;
    config.metricsOut = envString("SWCC_METRICS_OUT");
    config.traceJson = envString("SWCC_TRACE_JSON");
    config.progress = envFlag("SWCC_PROGRESS");
    config.logLevel = envString("SWCC_LOG_LEVEL");
    return config;
}

void
applyCli(const CliConfig &config)
{
    if (!config.logLevel.empty()) {
        const auto level = parseLogLevel(config.logLevel);
        if (!level.has_value()) {
            throw std::invalid_argument(
                "unknown log level '" + config.logLevel +
                "' (expected trace, debug, info, warn, error, off)");
        }
        setLogLevel(*level);
    }
    setProgressEnabled(config.progress);
    if (!config.traceJson.empty()) {
        tracer().setEnabled(true);
        if (!compiledIn()) {
            SWCC_LOG_WARN("--trace-json requested but this build has "
                          "SWCC_OBS=OFF; the trace will be empty");
        }
    }
    if (!config.metricsOut.empty() && !compiledIn()) {
        SWCC_LOG_WARN("--metrics-out requested but this build has "
                      "SWCC_OBS=OFF; counters will read zero");
    }
    std::lock_guard<std::mutex> lock(state_mutex);
    pending_metrics_out = config.metricsOut;
    pending_trace_json = config.traceJson;
}

void
consumeArgs(int &argc, char **argv)
{
    CliConfig config = envConfig();
    std::vector<char *> kept;
    kept.reserve(static_cast<std::size_t>(argc));

    const auto match = [&](int &i, std::string_view flag,
                           std::string *value) -> bool {
        const std::string_view arg = argv[i];
        if (value == nullptr) {
            return arg == flag;
        }
        if (arg.size() > flag.size() + 1 &&
            arg.substr(0, flag.size()) == flag &&
            arg[flag.size()] == '=') {
            *value = std::string(arg.substr(flag.size() + 1));
            return true;
        }
        if (arg == flag) {
            if (i + 1 >= argc) {
                throw std::invalid_argument(std::string(flag) +
                                            " needs a value");
            }
            *value = argv[++i];
            return true;
        }
        return false;
    };

    for (int i = 0; i < argc; ++i) {
        if (match(i, "--metrics-out", &config.metricsOut) ||
            match(i, "--trace-json", &config.traceJson) ||
            match(i, "--log-level", &config.logLevel)) {
            continue;
        }
        if (match(i, "--progress", nullptr)) {
            config.progress = true;
            continue;
        }
        kept.push_back(argv[i]);
    }

    argc = static_cast<int>(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
        argv[i] = kept[i];
    }
    argv[kept.size()] = nullptr;

    applyCli(config);
}

void
addFinalizeHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(state_mutex);
    finalize_hooks.push_back(std::move(hook));
}

void
finalize()
{
    std::string metricsOut;
    std::string traceJson;
    std::vector<std::function<void()>> hooks;
    {
        std::lock_guard<std::mutex> lock(state_mutex);
        metricsOut = std::move(pending_metrics_out);
        traceJson = std::move(pending_trace_json);
        pending_metrics_out.clear();
        pending_trace_json.clear();
        hooks = finalize_hooks;
    }
    if (metricsOut.empty() && traceJson.empty()) {
        return;
    }
    for (const auto &hook : hooks) {
        hook();
    }
    if (!metricsOut.empty()) {
        writeMetricsFile(metricsOut);
        SWCC_LOG_INFO("wrote metrics to " + metricsOut);
    }
    if (!traceJson.empty()) {
        writeChromeTraceFile(traceJson);
        SWCC_LOG_INFO("wrote Chrome trace to " + traceJson +
                      " (open in https://ui.perfetto.dev)");
    }
}

} // namespace swcc::obs
