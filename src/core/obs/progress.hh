/**
 * @file
 * Throttled, TTY-aware progress reporting on stderr.
 *
 * A ProgressReporter tracks completion of a known number of work
 * items and periodically prints one status line with rate and ETA:
 *
 *     validate: 128/832 (15.4%) 412.0/s eta 1.7s
 *
 * When stderr is a terminal the line is redrawn in place with '\r';
 * otherwise full lines are printed at most every few seconds so logs
 * stay readable. Printing is throttled (default 100 ms) and the
 * per-item cost when reporting is disabled is a single branch on a
 * bool captured at construction.
 *
 * Reporting is off unless enabled with setProgressEnabled() (wired to
 * `--progress`). tick() is safe to call from worker threads.
 *
 * Like the logger — and unlike span/metric instrumentation — the
 * reporter stays functional under SWCC_OBS=OFF: it is user-facing
 * run feedback, not hot-path telemetry.
 */

#ifndef SWCC_CORE_OBS_PROGRESS_HH
#define SWCC_CORE_OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace swcc::obs
{

/** Whether new ProgressReporters are active (default off). */
bool progressEnabled();

/** Enables/disables progress reporting for reporters created later. */
void setProgressEnabled(bool on);

/** Reporting sink override for tests; null restores stderr. */
void setProgressSink(std::ostream *sink);

/** See file comment. */
class ProgressReporter
{
  public:
    /**
     * Starts a reporter for @p total items labelled @p label. Captures
     * progressEnabled() at construction; an inactive reporter's
     * tick() is a single branch.
     */
    ProgressReporter(std::string label, std::uint64_t total);

    /** Prints the final line (see finish()). */
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Records @p n completed items; may redraw the status line. */
    void
    tick(std::uint64_t n = 1)
    {
        if (!active_) {
            return;
        }
        done_.fetch_add(n, std::memory_order_relaxed);
        maybePrint(false);
    }

    /** Prints the 100% line and deactivates (idempotent). */
    void finish();

  private:
    void maybePrint(bool force);

    std::string label_;
    std::uint64_t total_;
    bool active_;
    bool tty_;
    double startUs_;
    std::atomic<std::uint64_t> done_{0};
    /** Last print time in us since start; throttles redraws. */
    std::atomic<std::int64_t> lastPrintUs_{-1'000'000'000};
    std::mutex printMutex_;
};

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_PROGRESS_HH
