#include "core/obs/log.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <ostream>

namespace swcc::obs
{

namespace
{

/** SWCC_LOG_LEVEL, or the default (warn) when unset or unparsable. */
LogLevel
envLogLevel()
{
    const char *env = std::getenv("SWCC_LOG_LEVEL");
    if (env != nullptr) {
        if (const auto parsed = parseLogLevel(env)) {
            return *parsed;
        }
    }
    return LogLevel::Warn;
}

std::atomic<int> &
levelCell()
{
    static std::atomic<int> level{static_cast<int>(envLogLevel())};
    return level;
}

std::mutex sink_mutex;
std::ostream *sink = nullptr;

} // namespace

std::string_view
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off:   return "off";
    }
    return "?";
}

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    for (LogLevel level : {LogLevel::Trace, LogLevel::Debug,
                           LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
        if (name == logLevelName(level)) {
            return level;
        }
    }
    return std::nullopt;
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelCell().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelCell().store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
        levelCell().load(std::memory_order_relaxed);
}

void
setLogSink(std::ostream *stream)
{
    std::lock_guard<std::mutex> lock(sink_mutex);
    sink = stream;
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    const char *base = file;
    for (const char *p = file; *p != '\0'; ++p) {
        if (*p == '/' || *p == '\\') {
            base = p + 1;
        }
    }
    // Compose off-lock, write the finished line under the lock so
    // concurrent messages never interleave mid-line.
    std::string text;
    text.reserve(message.size() + 32);
    text += '[';
    text += logLevelName(level);
    text += "] ";
    text += base;
    text += ':';
    text += std::to_string(line);
    text += ": ";
    text += message;
    text += '\n';
    std::lock_guard<std::mutex> lock(sink_mutex);
    std::ostream &out = sink != nullptr ? *sink : std::cerr;
    out << text;
    out.flush();
}

} // namespace swcc::obs
