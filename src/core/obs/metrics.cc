#include "core/obs/metrics.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/campaign/atomic_file.hh"
#include "core/obs/json.hh"
#include "core/obs/prometheus.hh"

namespace swcc::obs
{

namespace
{

/** Shortest round-trip double rendering, always finite-safe. */
std::string
renderNumber(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

/** RFC-4180 quoting for fields containing separators or quotes. */
std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos) {
        return field;
    }
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry *
MetricsRegistry::findEntry(std::string_view name)
{
    for (Entry &entry : entries_) {
        if (entry.name == name) {
            return &entry;
        }
    }
    return nullptr;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry *existing = findEntry(name)) {
        if (existing->kind != MetricSnapshot::Kind::Counter) {
            throw std::logic_error(
                "metric '" + std::string(name) +
                "' already registered as a different kind");
        }
        return *existing->counter;
    }
    if (nextCell_ >= kMaxCells) {
        throw std::logic_error("metric cell space exhausted");
    }
    Entry entry;
    entry.name = std::string(name);
    entry.kind = MetricSnapshot::Kind::Counter;
    entry.counter.reset(new Counter(*this, nextCell_++));
    entries_.push_back(std::move(entry));
    return *entries_.back().counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry *existing = findEntry(name)) {
        if (existing->kind != MetricSnapshot::Kind::Gauge) {
            throw std::logic_error(
                "metric '" + std::string(name) +
                "' already registered as a different kind");
        }
        return *existing->gauge;
    }
    Entry entry;
    entry.name = std::string(name);
    entry.kind = MetricSnapshot::Kind::Gauge;
    entry.gauge.reset(new Gauge());
    entries_.push_back(std::move(entry));
    return *entries_.back().gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry *existing = findEntry(name)) {
        if (existing->kind != MetricSnapshot::Kind::Histogram) {
            throw std::logic_error(
                "metric '" + std::string(name) +
                "' already registered as a different kind");
        }
        return *existing->histogram;
    }
    if (bounds.empty() || bounds.size() > 64 ||
        !std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) !=
            bounds.end()) {
        throw std::logic_error(
            "histogram '" + std::string(name) +
            "' needs 1..64 strictly increasing bucket bounds");
    }
    const auto buckets = static_cast<std::uint32_t>(bounds.size()) + 1;
    if (nextCell_ + buckets > kMaxCells || nextSum_ >= kMaxSums) {
        throw std::logic_error("metric cell space exhausted");
    }
    Entry entry;
    entry.name = std::string(name);
    entry.kind = MetricSnapshot::Kind::Histogram;
    entry.histogram.reset(
        new Histogram(*this, std::move(bounds), nextCell_, nextSum_));
    nextCell_ += buckets;
    ++nextSum_;
    entries_.push_back(std::move(entry));
    return *entries_.back().histogram;
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    // The raw cached pointer is safe because shards are owned by the
    // (process-lifetime) registry and never deallocated.
    thread_local Shard *cached = nullptr;
    if (cached == nullptr) {
        auto shard = std::make_unique<Shard>();
        cached = shard.get();
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    return *cached;
}

std::atomic<std::uint64_t> &
MetricsRegistry::cell(std::uint32_t idx)
{
    return localShard().cells[idx];
}

std::atomic<double> &
MetricsRegistry::sumCell(std::uint32_t idx)
{
    return localShard().sums[idx];
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    const auto cellTotal = [&](std::uint32_t idx) {
        std::uint64_t total = 0;
        for (const auto &shard : shards_) {
            total += shard->cells[idx].load(std::memory_order_relaxed);
        }
        return total;
    };
    const auto sumTotal = [&](std::uint32_t idx) {
        double total = 0.0;
        for (const auto &shard : shards_) {
            total += shard->sums[idx].load(std::memory_order_relaxed);
        }
        return total;
    };

    std::vector<MetricSnapshot> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_) {
        MetricSnapshot snap;
        snap.name = entry.name;
        snap.kind = entry.kind;
        switch (entry.kind) {
          case MetricSnapshot::Kind::Counter:
            snap.value = static_cast<double>(
                cellTotal(entry.counter->cell_));
            break;
          case MetricSnapshot::Kind::Gauge:
            snap.value = entry.gauge->value();
            break;
          case MetricSnapshot::Kind::Histogram: {
            const Histogram &hist = *entry.histogram;
            snap.bounds = hist.bounds_;
            snap.counts.resize(hist.bounds_.size() + 1);
            for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                snap.counts[b] = cellTotal(
                    hist.firstCell_ + static_cast<std::uint32_t>(b));
                snap.count += snap.counts[b];
            }
            snap.sum = sumTotal(hist.sumCell_);
            break;
          }
        }
        out.push_back(std::move(snap));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (auto &c : shard->cells) {
            c.store(0, std::memory_order_relaxed);
        }
        for (auto &s : shard->sums) {
            s.store(0.0, std::memory_order_relaxed);
        }
    }
    for (Entry &entry : entries_) {
        if (entry.kind == MetricSnapshot::Kind::Gauge) {
            entry.gauge->set(0.0);
        }
    }
}

void
writeMetricsJson(std::ostream &os)
{
    const auto snaps = metrics().snapshot();
    os << "{\"metrics\":[";
    bool first = true;
    for (const MetricSnapshot &snap : snaps) {
        if (!first) {
            os << ',';
        }
        first = false;
        os << "{\"name\":\"" << jsonEscape(snap.name) << "\",";
        switch (snap.kind) {
          case MetricSnapshot::Kind::Counter:
            os << "\"kind\":\"counter\",\"value\":"
               << renderNumber(snap.value);
            break;
          case MetricSnapshot::Kind::Gauge:
            os << "\"kind\":\"gauge\",\"value\":"
               << renderNumber(snap.value);
            break;
          case MetricSnapshot::Kind::Histogram: {
            os << "\"kind\":\"histogram\",\"count\":" << snap.count
               << ",\"sum\":" << renderNumber(snap.sum)
               << ",\"buckets\":[";
            for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                if (b != 0) {
                    os << ',';
                }
                os << "{\"le\":";
                if (b < snap.bounds.size()) {
                    os << renderNumber(snap.bounds[b]);
                } else {
                    os << "\"inf\"";
                }
                os << ",\"count\":" << snap.counts[b] << '}';
            }
            os << ']';
            break;
          }
        }
        os << '}';
    }
    os << "]}\n";
}

void
writeMetricsCsv(std::ostream &os)
{
    os << "name,kind,value,count,sum\n";
    for (const MetricSnapshot &snap : metrics().snapshot()) {
        const char *kind =
            snap.kind == MetricSnapshot::Kind::Counter ? "counter"
            : snap.kind == MetricSnapshot::Kind::Gauge ? "gauge"
                                                       : "histogram";
        os << csvEscape(snap.name) << ',' << kind << ','
           << renderNumber(snap.value) << ',' << snap.count << ','
           << renderNumber(snap.sum) << '\n';
    }
}

std::string
writeMetricsFile(const std::string &path)
{
    campaign::atomicWriteFile(path, [&](std::ostream &os) {
        if (path.ends_with(".csv")) {
            writeMetricsCsv(os);
        } else if (path.ends_with(".prom")) {
            writeMetricsPrometheus(os);
        } else {
            writeMetricsJson(os);
        }
    });
    return path;
}

} // namespace swcc::obs
