#include "core/obs/json.hh"

#include <cctype>
#include <cmath>
#include <charconv>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace swcc::obs
{

namespace
{

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWs();
        JsonValue value = parseValue(0);
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after JSON document");
        }
        return value;
    }

  private:
    static constexpr int kMaxDepth = 200;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) == literal) {
            pos_ += literal.size();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
        }
        skipWs();
        JsonValue value;
        switch (peek()) {
          case '{': parseObject(value, depth); return value;
          case '[': parseArray(value, depth); return value;
          case '"':
            value.type = JsonValue::Type::String;
            value.string = parseString();
            return value;
          case 't':
            if (consumeLiteral("true")) {
                value.type = JsonValue::Type::Bool;
                value.boolean = true;
                return value;
            }
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false")) {
                value.type = JsonValue::Type::Bool;
                value.boolean = false;
                return value;
            }
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null")) {
                return value;
            }
            fail("bad literal");
          default:
            parseNumber(value);
            return value;
        }
    }

    void
    parseObject(JsonValue &value, int depth)
    {
        value.type = JsonValue::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            value.object.emplace_back(std::move(key),
                                      parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void
    parseArray(JsonValue &value, int depth)
    {
        value.type = JsonValue::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        for (;;) {
            value.array.push_back(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u':  appendCodepoint(out, parseHex4()); break;
              default:   fail("bad escape");
            }
        }
    }

    unsigned
    parseHex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
        }
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("bad \\u escape");
            }
        }
        return value;
    }

    /** UTF-8-encodes one BMP code point (surrogates passed through). */
    static void
    appendCodepoint(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    void
    parseNumber(JsonValue &value)
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected a value");
        }
        double parsed = 0.0;
        const auto [ptr, ec] = std::from_chars(
            text_.data() + start, text_.data() + pos_, parsed);
        if (ec != std::errc{} || ptr != text_.data() + pos_) {
            pos_ = start;
            fail("bad number");
        }
        value.type = JsonValue::Type::Number;
        value.number = parsed;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[name, value] : object) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
validateChromeTrace(const JsonValue &doc, std::string *error)
{
    const auto failWith = [error](const std::string &what) {
        if (error != nullptr) {
            *error = what;
        }
        return false;
    };

    const JsonValue *events = nullptr;
    if (doc.isArray()) {
        events = &doc;
    } else if (doc.isObject()) {
        events = doc.find("traceEvents");
        if (events == nullptr || !events->isArray()) {
            return failWith("missing \"traceEvents\" array");
        }
    } else {
        return failWith("top level is neither object nor array");
    }

    struct StreamState
    {
        double lastTs = 0.0;
        bool sawTs = false;
        std::uint64_t openSpans = 0;
    };
    std::map<std::pair<long long, long long>, StreamState> streams;

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &event = events->array[i];
        const std::string at = "event " + std::to_string(i) + ": ";
        if (!event.isObject()) {
            return failWith(at + "not an object");
        }
        const JsonValue *ph = event.find("ph");
        if (ph == nullptr || !ph->isString() ||
            ph->string.size() != 1) {
            return failWith(at + "missing one-character \"ph\"");
        }
        const char phase = ph->string[0];

        const JsonValue *pid = event.find("pid");
        const JsonValue *tid = event.find("tid");
        if (pid == nullptr || !pid->isNumber()) {
            return failWith(at + "missing numeric \"pid\"");
        }
        if (phase != 'M' && (tid == nullptr || !tid->isNumber())) {
            return failWith(at + "missing numeric \"tid\"");
        }

        const JsonValue *ts = event.find("ts");
        if (phase != 'M') {
            if (ts == nullptr || !ts->isNumber()) {
                return failWith(at + "missing numeric \"ts\"");
            }
            if (!std::isfinite(ts->number)) {
                return failWith(at + "non-finite \"ts\"");
            }
        }

        const JsonValue *name = event.find("name");
        if (phase != 'E' &&
            (name == nullptr || !name->isString())) {
            return failWith(at + "missing \"name\"");
        }

        if (phase == 'M') {
            continue;
        }

        StreamState &stream = streams[{
            static_cast<long long>(pid->number),
            tid != nullptr ? static_cast<long long>(tid->number) : 0}];
        if (stream.sawTs && ts->number < stream.lastTs) {
            return failWith(at + "\"ts\" decreases within pid/tid");
        }
        stream.lastTs = ts->number;
        stream.sawTs = true;

        switch (phase) {
          case 'B':
            ++stream.openSpans;
            break;
          case 'E':
            if (stream.openSpans == 0) {
                return failWith(at + "E event with no open B");
            }
            --stream.openSpans;
            break;
          case 'X': {
            const JsonValue *dur = event.find("dur");
            if (dur == nullptr || !dur->isNumber() ||
                !(dur->number >= 0.0)) {
                return failWith(at +
                                "X event needs non-negative \"dur\"");
            }
            break;
          }
          case 'C': {
            const JsonValue *args = event.find("args");
            if (args == nullptr || !args->isObject()) {
                return failWith(at + "C event needs \"args\"");
            }
            break;
          }
          case 'i':
          case 'I':
            break;
          case 's':
          case 't':
          case 'f':
          case 'b':
          case 'e': {
            // Flow (s/t/f) and async (b/e) events correlate across
            // threads by id; without one they can never be matched.
            const JsonValue *id = event.find("id");
            if (id == nullptr ||
                (!id->isNumber() && !id->isString())) {
                return failWith(at +
                                "flow/async event needs \"id\"");
            }
            const JsonValue *cat = event.find("cat");
            if (cat == nullptr || !cat->isString()) {
                return failWith(at +
                                "flow/async event needs \"cat\"");
            }
            break;
          }
          default:
            return failWith(at + "unsupported phase '" +
                            std::string(1, phase) + "'");
        }
    }

    for (const auto &[key, stream] : streams) {
        if (stream.openSpans != 0) {
            return failWith(
                "unbalanced B/E: " +
                std::to_string(stream.openSpans) +
                " span(s) left open on pid " +
                std::to_string(key.first) + " tid " +
                std::to_string(key.second));
        }
    }
    return true;
}

} // namespace swcc::obs
