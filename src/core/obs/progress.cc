#include "core/obs/progress.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace swcc::obs
{

namespace
{

std::atomic<bool> progress_on{false};

std::mutex sink_mutex;
std::ostream *sink = nullptr; // Null means stderr.

double
nowUs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

bool
stderrIsTty()
{
#if defined(__unix__) || defined(__APPLE__)
    return isatty(2) == 1;
#else
    return false;
#endif
}

} // namespace

bool
progressEnabled()
{
    return progress_on.load(std::memory_order_relaxed);
}

void
setProgressEnabled(bool on)
{
    progress_on.store(on, std::memory_order_relaxed);
}

void
setProgressSink(std::ostream *newSink)
{
    std::lock_guard<std::mutex> lock(sink_mutex);
    sink = newSink;
}

ProgressReporter::ProgressReporter(std::string label,
                                   std::uint64_t total)
    : label_(std::move(label)),
      total_(total),
      active_(progressEnabled() && total > 0),
      tty_(stderrIsTty()),
      startUs_(nowUs())
{
}

ProgressReporter::~ProgressReporter()
{
    finish();
}

void
ProgressReporter::finish()
{
    if (!active_) {
        return;
    }
    maybePrint(true);
    active_ = false;
}

void
ProgressReporter::maybePrint(bool force)
{
    const auto sinceStart =
        static_cast<std::int64_t>(nowUs() - startUs_);
    std::int64_t last = lastPrintUs_.load(std::memory_order_relaxed);
    // Redraw a terminal often; append to a log file rarely.
    const std::int64_t interval = tty_ ? 100'000 : 2'000'000;
    if (!force && sinceStart - last < interval) {
        return;
    }
    // Whoever wins the CAS prints; losers already see fresh output.
    if (!lastPrintUs_.compare_exchange_strong(
            last, sinceStart, std::memory_order_relaxed) &&
        !force) {
        return;
    }

    const std::uint64_t done =
        std::min(done_.load(std::memory_order_relaxed), total_);
    const double seconds =
        std::max(static_cast<double>(sinceStart) / 1e6, 1e-9);
    const double rate = static_cast<double>(done) / seconds;
    const double pct =
        100.0 * static_cast<double>(done) / static_cast<double>(total_);
    const double eta =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;

    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s: %llu/%llu (%.1f%%) %.1f/s eta %.1fs",
                  label_.c_str(),
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), pct, rate,
                  eta);

    std::lock_guard<std::mutex> lock(sink_mutex);
    std::ostream &os = sink != nullptr ? *sink : std::cerr;
    if (tty_ && sink == nullptr) {
        // Redraw in place; \x1b[K clears the remainder of the line.
        os << '\r' << line << "\x1b[K";
        if (force) {
            os << '\n';
        }
    } else {
        os << line << '\n';
    }
    os.flush();
}

} // namespace swcc::obs
