/**
 * @file
 * Minimal JSON value model, parser, and Chrome-trace validator.
 *
 * Supports the whole of JSON (objects, arrays, strings with escapes,
 * numbers, booleans, null) with a recursion-depth guard; no external
 * dependencies. Used by tools/trace_check and the observability tests
 * to verify that every emitted `*.trace.json` artifact is loadable,
 * and by the emitters for string escaping.
 */

#ifndef SWCC_CORE_OBS_JSON_HH
#define SWCC_CORE_OBS_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swcc::obs
{

/** A parsed JSON value (tagged union, value semantics). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Key/value pairs in document order (duplicates preserved). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member named @p key, or nullptr. Object values only. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parses @p text as one JSON document (surrounding whitespace
 * allowed, trailing garbage rejected).
 *
 * @throws std::runtime_error describing the error and its byte
 *         offset.
 */
JsonValue parseJson(std::string_view text);

/** Escapes @p text for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Validates @p doc as a Chrome trace-event document:
 *
 *  - the top level is an object with a "traceEvents" array (or a bare
 *    array of events);
 *  - every event is an object with a one-character "ph" and numeric
 *    "pid"/"tid" ("ts" required except for metadata);
 *  - per (pid, tid), "ts" never decreases and B/E events are balanced
 *    (every E closes a B, none left open);
 *  - X events carry a non-negative "dur"; C events carry args;
 *  - flow (s/t/f) and async (b/e) events carry an "id" and "cat".
 *
 * On failure @p error (if non-null) receives a description of the
 * first violation.
 */
bool validateChromeTrace(const JsonValue &doc, std::string *error);

} // namespace swcc::obs

#endif // SWCC_CORE_OBS_JSON_HH
