#include "core/obs/prometheus.hh"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace swcc::obs
{

namespace
{

bool
promNameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/** Finite-safe value rendering; +Inf renders as "+Inf" for le. */
std::string
renderValue(double value)
{
    if (std::isinf(value)) {
        return value > 0 ? "+Inf" : "-Inf";
    }
    if (std::isnan(value)) {
        return "NaN";
    }
    // Shortest round-trip form: scrape-heavy expositions render
    // thousands of bucket bounds, and iostream's precision(17)
    // both bloats them ("56.832000000000001") and costs ~10x the
    // CPU of to_chars.
    char buffer[32];
    const std::to_chars_result result =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    return std::string(buffer, result.ptr);
}

} // namespace

std::string
promMetricName(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        out += promNameChar(c) ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string
promEscapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
promFamilyName(const MetricSnapshot &snap)
{
    std::string name = promMetricName(snap.name);
    if (snap.kind == MetricSnapshot::Kind::Counter &&
        !name.ends_with("_total")) {
        name += "_total";
    }
    return name;
}

void
appendPrometheus(std::string &out, const MetricSnapshot &snap)
{
    const std::string name = promFamilyName(snap);
    switch (snap.kind) {
      case MetricSnapshot::Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + ' ' + renderValue(snap.value) + '\n';
        break;
      case MetricSnapshot::Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + renderValue(snap.value) + '\n';
        break;
      case MetricSnapshot::Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
            cumulative += b < snap.counts.size() ? snap.counts[b] : 0;
            out += name + "_bucket{le=\"" +
                renderValue(snap.bounds[b]) + "\"} " +
                std::to_string(cumulative) + '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} " +
            std::to_string(snap.count) + '\n';
        out += name + "_sum " + renderValue(snap.sum) + '\n';
        out += name + "_count " + std::to_string(snap.count) + '\n';
        break;
      }
    }
}

std::string
renderPrometheus(const std::vector<MetricSnapshot> &snaps)
{
    std::string out;
    for (const MetricSnapshot &snap : snaps) {
        appendPrometheus(out, snap);
    }
    return out;
}

void
writeMetricsPrometheus(std::ostream &os)
{
    os << renderPrometheus(metrics().snapshot());
}

} // namespace swcc::obs
