/**
 * @file
 * Sensitivity analysis (paper Section 4, Table 8): per-parameter impact
 * on execution time.
 */

#ifndef SWCC_CORE_SENSITIVITY_HH
#define SWCC_CORE_SENSITIVITY_HH

#include <vector>

#include "core/campaign/campaign.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/**
 * Sensitivity of one scheme to one parameter.
 */
struct SensitivityEntry
{
    Scheme scheme = Scheme::Base;
    ParamId param = ParamId::Ls;
    /** Execution time (cycles/instruction incl. contention) at low. */
    Cycles timeLow = 0.0;
    /** Execution time at the parameter's high value. */
    Cycles timeHigh = 0.0;
    /**
     * Percent change in execution time when the parameter moves from
     * its low to its high value with all others held at middle values
     * (the paper's Table 8 metric).
     */
    double percentChange = 0.0;
};

/**
 * Configuration of the sensitivity analysis.
 */
struct SensitivityConfig
{
    /**
     * Number of processors of the bus system on which execution time
     * is measured. Contention amplifies parameter effects, which is
     * the regime the paper's comparisons target.
     */
    unsigned processors = 16;
    /**
     * If true, average the low->high change over the 3^k grid of the
     * other varying parameters rather than pinning them at middle
     * values (the paper notes effects were "estimated at high, low and
     * middle values of miss rate"). Grid mode restricts the companion
     * grid to {msdat, shd, 1/apl} to stay tractable.
     */
    bool averageOverGrid = false;
};

/**
 * Sensitivity of @p scheme to @p param under @p config.
 */
SensitivityEntry parameterSensitivity(Scheme scheme, ParamId param,
                                      const SensitivityConfig &config);

/**
 * Full Table 8: every (scheme, parameter) pair. Entries are ordered by
 * parameter (Table 2 order) then scheme (Table 8 column order:
 * Software-Flush, No-Cache, Dragon, Base).
 */
std::vector<SensitivityEntry>
sensitivityTable(const SensitivityConfig &config);

/**
 * Table 8 as a resumable campaign: one journaled cell per
 * (parameter, scheme) pair. Poisoned cells surface as NaN times.
 * The parameterless overload delegates here with journaling disabled.
 */
std::vector<SensitivityEntry>
sensitivityTable(const SensitivityConfig &config,
                 const campaign::CampaignOptions &options,
                 campaign::CampaignReport *report = nullptr);

/**
 * Parameters of @p table sorted by decreasing |percentChange| for one
 * scheme — the "which parameters matter" ranking of Section 4.
 */
std::vector<SensitivityEntry>
rankedSensitivities(const std::vector<SensitivityEntry> &table,
                    Scheme scheme);

} // namespace swcc

#endif // SWCC_CORE_SENSITIVITY_HH
