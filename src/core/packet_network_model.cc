#include "core/packet_network_model.hh"

#include <algorithm>
#include <stdexcept>

#include "core/cost_model.hh"
#include "core/per_instruction.hh"

namespace swcc
{

PacketTrafficModel::PacketTrafficModel()
{
    shapes_.fill(PacketShape{});
    supported_.fill(false);

    auto set = [this](Operation op, double req, double resp) {
        shapes_[operationIndex(op)] = {req, resp};
        supported_[operationIndex(op)] = true;
    };

    set(Operation::InstrExec, 0.0, 0.0);
    set(Operation::CleanMissMem, 1.0, 4.0);  // Address out, block back.
    set(Operation::DirtyMissMem, 6.0, 4.0);  // + victim address & data.
    set(Operation::ReadThrough, 1.0, 1.0);
    set(Operation::WriteThrough, 2.0, 0.0);  // Posted: address + word.
    set(Operation::CleanFlush, 0.0, 0.0);
    set(Operation::DirtyFlush, 5.0, 0.0);    // Posted: address + block.
}

PacketShape
PacketTrafficModel::shape(Operation op) const
{
    if (!supports(op)) {
        throw std::invalid_argument(
            std::string(operationName(op)) +
            " is not defined for a packet-switched network");
    }
    return shapes_[operationIndex(op)];
}

bool
PacketTrafficModel::supports(Operation op) const
{
    return supported_[operationIndex(op)];
}

void
PacketTrafficModel::setShape(Operation op, PacketShape shape)
{
    if (shape.requestWords < 0.0 || shape.responseWords < 0.0) {
        throw std::invalid_argument("packet shapes must be non-negative");
    }
    shapes_[operationIndex(op)] = shape;
    supported_[operationIndex(op)] = true;
}

double
kruskalSnirWait(double link_load)
{
    if (link_load < 0.0 || link_load >= 1.0) {
        throw std::invalid_argument(
            "link load must lie in [0, 1) for a stable queue");
    }
    return link_load / (4.0 * (1.0 - link_load));
}

PacketNetworkSolution
solvePacketNetwork(Scheme scheme, const WorkloadParams &params,
                   unsigned stages, const PacketTrafficModel &traffic)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes cannot run on a multistage network");
    }
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }

    const FrequencyVector freqs = operationFrequencies(scheme, params);

    // Local CPU work per instruction: Table 1 processor overhead minus
    // its bus-held portion (the transfer itself now happens in the
    // network), plus the 1-cycle instruction execution.
    const BusCostModel bus_costs;
    double cpu_local = 0.0;
    double forward_words = 0.0;
    double return_words = 0.0;
    for (Operation op : kAllOperations) {
        const double freq = freqs.of(op);
        if (freq == 0.0) {
            continue;
        }
        if (!traffic.supports(op)) {
            throw std::invalid_argument(
                "workload uses operation '" +
                std::string(operationName(op)) +
                "' which the packet network does not support");
        }
        const OpCost cost = bus_costs.cost(op);
        cpu_local += freq * (cost.cpu - cost.channel);
        const PacketShape shape = traffic.shape(op);
        forward_words += freq * shape.requestWords;
        return_words += freq * shape.responseWords;
    }

    PacketNetworkSolution sol;
    sol.stages = stages;
    sol.processors = 1u << stages;
    sol.cpuPerInstruction = cpu_local;
    sol.wordsPerInstruction = std::max(forward_words, return_words);

    const double n = static_cast<double>(stages);

    // Blocked cycles per instruction at per-stage wait w.
    auto stall_at = [&](double wait) {
        double stall = 0.0;
        for (Operation op : kAllOperations) {
            const double freq = freqs.of(op);
            if (freq == 0.0 || op == Operation::InstrExec) {
                continue;
            }
            const PacketShape shape = traffic.shape(op);
            if (shape.requestWords == 0.0 &&
                shape.responseWords == 0.0) {
                continue;
            }
            double latency;
            if (shape.responseWords > 0.0) {
                // Round trip; trains pipeline behind their heads.
                latency = 2.0 * n * (1.0 + wait) + traffic.memoryCycles +
                    (shape.requestWords - 1.0) +
                    (shape.responseWords - 1.0);
            } else {
                // Posted: the processor only serialises the injection.
                latency = shape.requestWords;
            }
            stall += freq * latency;
        }
        return stall;
    };

    if (sol.wordsPerInstruction == 0.0) {
        sol.cyclesPerInstruction = cpu_local;
        sol.processorUtilization = 1.0 / cpu_local;
        sol.processingPower =
            static_cast<double>(sol.processors) *
            sol.processorUtilization;
        return sol;
    }

    // Fixed point: T = cpu_local + stall(w(p)) with p = words / T.
    // The right-hand side falls as T grows, so bisection on
    // h(T) = rhs(T) - T locates the unique crossing above T > words.
    auto rhs = [&](double cycles) {
        const double load = sol.wordsPerInstruction / cycles;
        return cpu_local + stall_at(kruskalSnirWait(load));
    };

    // The crossing lies above W (where the link load reaches 1) and
    // above the zero-stall time, and rhs - T is strictly decreasing.
    double lo = sol.wordsPerInstruction * (1.0 + 1e-9);
    double hi = std::max(lo * 2.0, cpu_local + stall_at(0.0)) + 1.0;
    while (rhs(hi) > hi) {
        hi *= 2.0;
        if (hi > 1e12) {
            throw std::runtime_error(
                "packet network fixed point failed to bracket");
        }
    }
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (rhs(mid) > mid) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * hi) {
            break;
        }
    }

    sol.cyclesPerInstruction = 0.5 * (lo + hi);
    sol.linkLoad = sol.wordsPerInstruction / sol.cyclesPerInstruction;
    sol.perStageWait = kruskalSnirWait(std::min(sol.linkLoad,
                                                1.0 - 1e-12));
    sol.networkStall = sol.cyclesPerInstruction - cpu_local;
    sol.processorUtilization = 1.0 / sol.cyclesPerInstruction;
    sol.processingPower = static_cast<double>(sol.processors) *
        sol.processorUtilization;
    return sol;
}

RawPacketSolution
solveRawPacketPoint(double think, double request_words,
                    double response_words, unsigned stages,
                    double memory_cycles)
{
    if (stages == 0) {
        throw std::invalid_argument("need at least one network stage");
    }
    if (request_words < 1.0 || response_words < 0.0 || think < 0.0) {
        throw std::invalid_argument(
            "need request_words >= 1, response_words >= 0, think >= 0");
    }

    const double n = static_cast<double>(stages);
    const double words = std::max(request_words, response_words);

    auto latency_at = [&](double wait) {
        if (response_words > 0.0) {
            return 2.0 * n * (1.0 + wait) + memory_cycles +
                (request_words - 1.0) + (response_words - 1.0);
        }
        return request_words;
    };

    // Fixed point on cycles-per-transaction C = think + L(words / C).
    auto rhs = [&](double cycles) {
        return think + latency_at(kruskalSnirWait(words / cycles));
    };

    double lo = words * (1.0 + 1e-9);
    double hi = std::max(lo * 2.0, think + latency_at(0.0)) + 1.0;
    while (rhs(hi) > hi) {
        hi *= 2.0;
        if (hi > 1e12) {
            throw std::runtime_error(
                "packet network fixed point failed to bracket");
        }
    }
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (rhs(mid) > mid) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * hi) {
            break;
        }
    }

    RawPacketSolution sol;
    sol.cyclesPerTransaction = 0.5 * (lo + hi);
    sol.latency = sol.cyclesPerTransaction - think;
    sol.computeFraction = think / sol.cyclesPerTransaction;
    sol.linkLoad = words / sol.cyclesPerTransaction;
    return sol;
}

} // namespace swcc
