/**
 * @file
 * Buffered packet-switched multistage-network model — the alternative
 * network discipline the paper's Section 6.3 and conclusion point to:
 * "Use of packet-switching would be more favorable to No-Cache."
 *
 * The model follows Kruskal & Snir's analysis of buffered banyan
 * networks: each 2x2 switch output port is an output-queued server of
 * one word per cycle, and at per-link load p the mean queueing delay
 * per stage is w(p) = p / (4 (1 - p)). A memory transaction sends a
 * request packet train and blocks until the last word of the response
 * train returns; round-trip latency is therefore
 *
 *   L = 2 n (1 + w(p)) + t_mem + (req_words - 1) + (resp_words - 1)
 *
 * and the per-link load is itself a function of how fast the
 * processors run, giving a fixed point solved here by bisection.
 */

#ifndef SWCC_CORE_PACKET_NETWORK_MODEL_HH
#define SWCC_CORE_PACKET_NETWORK_MODEL_HH

#include <array>

#include "core/frequency_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** Words a transaction moves in each direction. */
struct PacketShape
{
    /** Words sent toward memory (address + any write data). */
    double requestWords = 0.0;
    /** Words returned to the processor. */
    double responseWords = 0.0;
};

/**
 * Word counts per operation for the packet network.
 *
 * Defaults mirror the circuit-switched Table 9 payloads: a clean fetch
 * sends a 1-word request and receives a 4-word block; a dirty fetch
 * also carries the 4-word victim (plus its address) forward; a dirty
 * flush is a 5-word one-way train; read-through and write-through move
 * single words. A zero-word response means the processor does not wait
 * for one (write-through and flush are posted).
 */
class PacketTrafficModel
{
  public:
    PacketTrafficModel();

    /** Shape of one operation. @pre supports(op) */
    PacketShape shape(Operation op) const;

    /** Whether the operation exists on a network (no snooping ops). */
    bool supports(Operation op) const;

    /** Overrides one operation's shape (ablations). */
    void setShape(Operation op, PacketShape shape);

    /** Memory access latency in cycles (default 2, as in Table 9). */
    double memoryCycles = 2.0;

  private:
    std::array<PacketShape, kNumOperations> shapes_;
    std::array<bool, kNumOperations> supported_;
};

/** Solution of the packet-switched network model. */
struct PacketNetworkSolution
{
    unsigned stages = 0;
    unsigned processors = 0;
    /** c: CPU cycles per instruction (instruction work + local cache
     *  handling; network latency accounted separately). */
    Cycles cpuPerInstruction = 0.0;
    /** Mean words per instruction on the hotter direction. */
    double wordsPerInstruction = 0.0;
    /** Per-link load p at the fixed point. */
    double linkLoad = 0.0;
    /** Kruskal-Snir queueing delay per stage at the fixed point. */
    double perStageWait = 0.0;
    /** Mean blocked cycles per instruction waiting on the network. */
    Cycles networkStall = 0.0;
    /** Total cycles per instruction. */
    Cycles cyclesPerInstruction = 0.0;
    /** 1 / cyclesPerInstruction. */
    double processorUtilization = 0.0;
    /** processors * processorUtilization. */
    double processingPower = 0.0;
};

/**
 * Solves the packet-network fixed point for a scheme and workload.
 *
 * The CPU-side cost of each operation is its Table 1 *processor*
 * overhead with the bus-held portion replaced by the network
 * round-trip; instruction execution contributes one cycle.
 *
 * @param scheme Base, NoCache, or SoftwareFlush.
 * @param params The workload.
 * @param stages Switch stages (2^stages processors).
 * @param traffic Word-count model (defaults above).
 * @throws std::invalid_argument for Scheme::Dragon or zero stages.
 */
PacketNetworkSolution
solvePacketNetwork(Scheme scheme, const WorkloadParams &params,
                   unsigned stages,
                   const PacketTrafficModel &traffic = {});

/** Kruskal-Snir per-stage queueing delay for 2x2 switches at load p. */
double kruskalSnirWait(double link_load);

/**
 * Raw operating point of the packet network model, independent of any
 * coherence scheme — used to validate the model against the
 * packet-switched simulator.
 */
struct RawPacketSolution
{
    /** Cycles per transaction (think + latency). */
    double cyclesPerTransaction = 0.0;
    /** Round-trip (or injection) latency per transaction. */
    double latency = 0.0;
    /** Fraction of time the source computes. */
    double computeFraction = 0.0;
    /** Per-link load of the busier direction. */
    double linkLoad = 0.0;
};

/**
 * Solves the model for one source population: each source thinks for
 * @p think cycles, then issues a transaction of @p request_words /
 * @p response_words (response 0 = posted).
 */
RawPacketSolution
solveRawPacketPoint(double think, double request_words,
                    double response_words, unsigned stages,
                    double memory_cycles = 2.0);

} // namespace swcc

#endif // SWCC_CORE_PACKET_NETWORK_MODEL_HH
