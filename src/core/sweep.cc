#include "core/sweep.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/campaign/cell_hash.hh"
#include "core/parallel.hh"
#include "core/scheme_evaluator.hh"

namespace swcc
{

double
Series::maxY() const
{
    // Seed from the first finite point — an all-negative series (e.g.
    // a delta/error series) must not report a phantom maximum of 0,
    // and a poisoned (NaN) cell must not poison the whole extremum.
    // Empty (or all-NaN) mirrors finalY's convention of returning 0.
    bool seeded = false;
    double best = 0.0;
    for (const SeriesPoint &p : points) {
        if (!std::isfinite(p.y)) {
            continue;
        }
        best = seeded ? std::max(best, p.y) : p.y;
        seeded = true;
    }
    return best;
}

double
Series::finalY() const
{
    return points.empty() ? 0.0 : points.back().y;
}

std::vector<double>
linspace(double lo, double hi, std::size_t count)
{
    if (count == 0) {
        return {};
    }
    if (count == 1) {
        return {lo};
    }
    std::vector<double> values;
    values.reserve(count);
    const double step = (hi - lo) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i) {
        values.push_back(lo + step * static_cast<double>(i));
    }
    values.back() = hi;
    return values;
}

std::vector<double>
logspace(double lo, double hi, std::size_t count)
{
    if (lo <= 0.0 || hi <= 0.0) {
        throw std::invalid_argument("logspace needs positive bounds");
    }
    std::vector<double> values = linspace(std::log(lo), std::log(hi), count);
    for (double &v : values) {
        v = std::exp(v);
    }
    return values;
}

Series
busPowerSeries(Scheme scheme, const WorkloadParams &params,
               unsigned max_processors)
{
    Series series;
    series.label = std::string(schemeName(scheme));
    for (const BusSolution &sol :
         busPowerCurve(scheme, params, max_processors)) {
        series.points.push_back(
            {static_cast<double>(sol.processors), sol.processingPower});
    }
    return series;
}

Series
idealPowerSeries(unsigned max_processors)
{
    Series series;
    series.label = "Ideal";
    for (unsigned n = 1; n <= max_processors; ++n) {
        series.points.push_back(
            {static_cast<double>(n), static_cast<double>(n)});
    }
    return series;
}

Series
aplPowerSeries(Scheme scheme, WorkloadParams params,
               const std::vector<double> &apl_values, unsigned processors)
{
    Series series;
    series.label = std::string(schemeName(scheme));
    series.points = parallelMap(apl_values.size(), [&](std::size_t i) {
        WorkloadParams cell = params;
        cell.apl = apl_values[i];
        const BusSolution sol = evaluateBus(scheme, cell, processors);
        return SeriesPoint{apl_values[i], sol.processingPower};
    });
    return series;
}

Series
networkPowerSeries(Scheme scheme, const WorkloadParams &params,
                   unsigned max_stages)
{
    Series series;
    series.label = std::string(schemeName(scheme)) + " (network)";
    for (const NetworkSolution &sol :
         networkPowerCurve(scheme, params, max_stages)) {
        series.points.push_back(
            {static_cast<double>(sol.processors), sol.processingPower});
    }
    return series;
}

std::vector<SweepRow>
sweepPowerGrid(ParamId param, bool sweep_apl,
               const std::vector<double> &values,
               const WorkloadParams &base, unsigned processors,
               const std::vector<Scheme> &schemes,
               const campaign::CampaignOptions &options,
               campaign::CampaignReport *report)
{
    auto row_params = [&](std::size_t i) {
        WorkloadParams params = base;
        if (sweep_apl) {
            params.apl = values[i];
        } else {
            setParam(params, param, values[i]);
        }
        return params;
    };

    // The cell identity is the fully substituted workload point plus
    // the machine size and scheme list — everything the row computes,
    // nothing about when or where it ran.
    const auto results = campaign::runCells(
        values.size(), schemes.size(),
        [&](std::size_t i) {
            campaign::CellKey key("sweep");
            key.add(row_params(i))
                .add(static_cast<std::uint64_t>(processors));
            for (Scheme scheme : schemes) {
                key.add(schemeName(scheme));
            }
            return key.hash();
        },
        [&](std::size_t i) {
            const WorkloadParams params = row_params(i);
            std::vector<double> row;
            row.reserve(schemes.size());
            for (Scheme scheme : schemes) {
                row.push_back(
                    evaluateBus(scheme, params, processors)
                        .processingPower);
            }
            return row;
        },
        options, report);

    std::vector<SweepRow> rows(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        rows[i].value = values[i];
        rows[i].power = results[i];
    }
    return rows;
}

Series
networkUtilizationSeries(unsigned stages, double message_words,
                         const std::vector<double> &rates)
{
    Series series;
    series.label =
        "msg=" + std::to_string(static_cast<int>(message_words)) + "w";
    const double size = message_words + 2.0 * static_cast<double>(stages);
    std::vector<double> valid;
    valid.reserve(rates.size());
    for (double rate : rates) {
        if (rate > 0.0) {
            valid.push_back(rate);
        }
    }
    series.points = parallelMap(valid.size(), [&](std::size_t i) {
        return SeriesPoint{
            valid[i], solveComputeFraction(valid[i], size, stages)};
    });
    return series;
}

} // namespace swcc
