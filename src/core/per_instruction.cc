#include "core/per_instruction.hh"

#include <stdexcept>
#include <string>

namespace swcc
{

PerInstructionCost
perInstructionCost(const FrequencyVector &freqs, const CostModel &costs)
{
    PerInstructionCost result;
    for (Operation op : kAllOperations) {
        const double freq = freqs.of(op);
        if (freq == 0.0) {
            continue;
        }
        if (!costs.supports(op)) {
            throw std::invalid_argument(
                "workload uses operation '" +
                std::string(operationName(op)) +
                "' which the system model does not support");
        }
        const OpCost cost = costs.cost(op);
        result.cpu += freq * cost.cpu;
        result.channel += freq * cost.channel;
    }
    return result;
}

} // namespace swcc
