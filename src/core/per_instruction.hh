/**
 * @file
 * Per-instruction cost aggregation (paper Equations 1 and 2).
 */

#ifndef SWCC_CORE_PER_INSTRUCTION_HH
#define SWCC_CORE_PER_INSTRUCTION_HH

#include "core/cost_model.hh"
#include "core/frequency_model.hh"
#include "core/types.hh"

namespace swcc
{

/**
 * Average per-instruction cost of a scheme under a workload.
 *
 * @c cpu is c from Equation 1 (total CPU cycles per instruction, no
 * contention); @c channel is b from Equation 2 (cycles the shared
 * bus/network is held per instruction). Bus transactions are thus
 * generated at an average rate of one per (c - b) CPU cycles with an
 * average service demand of b cycles.
 */
struct PerInstructionCost
{
    /** c: average CPU cycles per instruction without contention. */
    Cycles cpu = 0.0;
    /** b: average shared-channel cycles per instruction. */
    Cycles channel = 0.0;

    /** Think time between transactions, Z = c - b. */
    Cycles thinkTime() const { return cpu - channel; }
};

/**
 * Computes c and b by weighting the cost table with the operation
 * frequencies (Equations 1-2).
 *
 * @param freqs Per-instruction operation frequencies (Tables 3-6).
 * @param costs The system model to price operations with.
 * @throws std::invalid_argument if @p freqs uses an operation that
 *         @p costs does not support (e.g. Dragon on a network).
 */
PerInstructionCost perInstructionCost(const FrequencyVector &freqs,
                                      const CostModel &costs);

} // namespace swcc

#endif // SWCC_CORE_PER_INSTRUCTION_HH
