#include "service/daemon.hh"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/obs/log.hh"
#include "core/obs/metrics.hh"
#include "core/solver_cache.hh"
#include "service/mpmc_queue.hh"
#include "service/protocol.hh"

namespace swcc::service
{

namespace
{

/** Submission queue capacity (power of two; ~100x a full batch). */
constexpr std::size_t kQueueCapacity = 8192;

/** Connection read chunk size. */
constexpr std::size_t kReadChunk = 64 * 1024;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

namespace
{

/**
 * One response slot, owned by its connection, completed exactly once
 * (by a worker, or inline on the connection thread for control and
 * error responses).
 */
struct Pending
{
    std::vector<std::uint8_t> response;
    std::atomic<bool> done{false};
};

struct Connection;

/** One decoded, validated query travelling to a batching worker. */
struct Submission
{
    Query query;
    Connection *conn = nullptr;
    Pending *slot = nullptr;
    bool json = false;
};

} // namespace

struct ServiceDaemon::Impl
{
    explicit Impl(DaemonConfig cfg)
        : config(std::move(cfg)), kernel(config.limits),
          queue(kQueueCapacity)
    {
        if (config.batchMax == 0) {
            config.batchMax = 1;
        }
        if (config.workers == 0) {
            config.workers = 1;
        }
    }

    DaemonConfig config;
    ServiceKernel kernel;

    MpmcQueue<Submission> queue;
    std::atomic<std::size_t> queued{0};
    std::mutex submitMutex;
    std::condition_variable submitCv;
    std::atomic<int> sleepers{0};
    std::atomic<bool> workersStop{false};

    int listenFd = -1;
    int stopPipe[2] = {-1, -1};
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};

    std::thread acceptor;
    std::vector<std::thread> workers;
    std::mutex connectionsMutex;
    std::vector<std::unique_ptr<Connection>> connections;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> validationErrors{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::int64_t> inflight{0};

#if SWCC_OBS_ENABLED
    obs::Counter *mQueries = nullptr;
    obs::Counter *mBatches = nullptr;
    obs::Counter *mValidationErrors = nullptr;
    obs::Counter *mProtocolErrors = nullptr;
    obs::Counter *mConnections = nullptr;
    obs::Histogram *mBatchSize = nullptr;
#endif

    void acceptLoop();
    void workerLoop();
    void submit(Submission sub);
    std::string buildStatsJson() const;
    void reapFinished(bool join_all);
};

namespace
{

/** Per-client state and thread body. */
struct Connection
{
    Connection(ServiceDaemon::Impl &daemon, int fd)
        : daemon_(daemon), fd_(fd)
    {
    }

    /** Worker side: publish a finished response (no wakeup yet). */
    static void
    complete(Pending *slot, std::vector<std::uint8_t> response)
    {
        slot->response = std::move(response);
        slot->done.store(true, std::memory_order_release);
    }

    /**
     * Worker side: wake the flusher after a run of complete() calls —
     * one lock+notify per connection per batch, not per response.
     * The empty critical section serializes against the flusher's
     * predicate-check-then-sleep window.
     */
    void
    wake()
    {
        { std::lock_guard<std::mutex> lock(mutex_); }
        cv_.notify_one();
    }

    void
    run()
    {
        std::vector<std::uint8_t> buffer;
        std::size_t offset = 0;
        bool close_requested = false;
        while (!close_requested) {
            if (!pending_.empty()) {
                waitAndFlushHead();
                continue;
            }
            struct pollfd fds[2];
            fds[0] = {fd_, POLLIN, 0};
            fds[1] = {daemon_.stopPipe[0], POLLIN, 0};
            if (::poll(fds, 2, -1) < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;
            }
            if (daemon_.stopping.load(std::memory_order_acquire)) {
                // Drain whatever the client already sent, answer it,
                // then leave: an accepted request is always served.
                readAvailable(buffer);
                processBuffer(buffer, offset, close_requested);
                break;
            }
            if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                continue;
            }
            if (!readAvailable(buffer)) {
                if (buffer.size() > offset) {
                    // Mid-request disconnect: a partial frame was
                    // abandoned. Per-connection only; just count it.
                    daemon_.protocolErrors.fetch_add(
                        1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
                    daemon_.mProtocolErrors->add();
#endif
                }
                break;
            }
            processBuffer(buffer, offset, close_requested);
        }
        drainPending();
        closeFd(fd_);
        finished.store(true, std::memory_order_release);
    }

    std::thread thread;
    std::atomic<bool> finished{false};
    /**
     * Submissions a worker may still touch (slot fill + wake()).
     * Reaping requires finished && workerRefs == 0, otherwise a
     * worker could call wake() on a destroyed connection.
     */
    std::atomic<std::uint64_t> workerRefs{0};

  private:
    /**
     * Non-blocking reads until EAGAIN; false once the peer has
     * disconnected (EOF or hard error).
     */
    bool
    readAvailable(std::vector<std::uint8_t> &buffer)
    {
        for (;;) {
            std::uint8_t chunk[kReadChunk];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n > 0) {
                buffer.insert(buffer.end(), chunk, chunk + n);
                if (static_cast<std::size_t>(n) < sizeof chunk) {
                    return true;
                }
                continue;
            }
            if (n == 0) {
                peerClosed_ = true;
                return false;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return true;
            }
            if (errno == EINTR) {
                continue;
            }
            peerClosed_ = true;
            return false;
        }
    }

    /** Decodes every complete frame in the buffer and dispatches it. */
    void
    processBuffer(std::vector<std::uint8_t> &buffer,
                  std::size_t &offset, bool &close_requested)
    {
        while (!close_requested) {
            RequestFrame frame;
            std::string error;
            std::size_t consumed = 0;
            const DecodeStatus status =
                decodeRequest(buffer.data() + offset,
                              buffer.size() - offset, consumed, frame,
                              error);
            if (status == DecodeStatus::NeedMore) {
                break;
            }
            if (status == DecodeStatus::BadFrame) {
                daemon_.protocolErrors.fetch_add(
                    1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
                daemon_.mProtocolErrors->add();
#endif
                // Framing is lost: answer once, then close. Guess the
                // response dialect from the first byte.
                const bool json =
                    buffer.size() > offset && buffer[offset] == '{';
                completeInline(ResponseStatus::BadRequest, error,
                               json);
                close_requested = true;
                break;
            }
            offset += consumed;
            dispatch(frame);
        }
        if (offset > 0) {
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(offset));
            offset = 0;
        }
        // Opportunistic flush of anything already answered inline.
        flushDonePrefix();
    }

    /** Routes one well-framed request. */
    void
    dispatch(const RequestFrame &frame)
    {
        if (!frame.fieldError.empty()) {
            daemon_.validationErrors.fetch_add(
                1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
            daemon_.mValidationErrors->add();
#endif
            completeInline(ResponseStatus::BadRequest,
                           frame.fieldError, frame.json);
            return;
        }
        switch (frame.kind) {
          case RequestKind::Stats:
            completeInline(ResponseStatus::Ok,
                           daemon_.buildStatsJson(), frame.json);
            return;
          case RequestKind::Ping:
            completeInline(ResponseStatus::Ok,
                           frame.json ? "{\"ok\":true,\"pong\":true}"
                                      : "pong",
                           frame.json);
            return;
          case RequestKind::Query:
            break;
        }
        // Field validation happens here, on the connection thread, so
        // a malformed query costs the workers nothing.
        std::string error = daemon_.kernel.validate(frame.query);
        if (!error.empty()) {
            daemon_.validationErrors.fetch_add(
                1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
            daemon_.mValidationErrors->add();
#endif
            QueryResult result;
            result.domain = frame.query.domain;
            result.error = std::move(error);
            std::vector<std::uint8_t> response;
            appendQueryResponse(response, result, frame.json);
            pushDoneSlot(std::move(response));
            return;
        }
        auto slot = std::make_unique<Pending>();
        Submission sub;
        sub.query = frame.query;
        sub.conn = this;
        sub.slot = slot.get();
        sub.json = frame.json;
        pending_.push_back(std::move(slot));
        workerRefs.fetch_add(1, std::memory_order_acq_rel);
        daemon_.submit(std::move(sub));
    }

    /** Queues an already-encoded (or text) response, in order. */
    void
    completeInline(ResponseStatus status, std::string_view text,
                   bool json)
    {
        std::vector<std::uint8_t> response;
        appendTextResponse(response, status, text, json);
        pushDoneSlot(std::move(response));
    }

    void
    pushDoneSlot(std::vector<std::uint8_t> response)
    {
        auto slot = std::make_unique<Pending>();
        slot->response = std::move(response);
        slot->done.store(true, std::memory_order_release);
        pending_.push_back(std::move(slot));
    }

    /** Sleeps until the head response is ready, then writes a burst. */
    void
    waitAndFlushHead()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return pending_.front()->done.load(
                    std::memory_order_acquire);
            });
        }
        flushDonePrefix();
    }

    /**
     * Writes every contiguous completed response from the head of the
     * queue in one syscall burst (the response-side batching: a
     * worker batch completes together and leaves here together).
     */
    void
    flushDonePrefix()
    {
        scratch_.clear();
        while (!pending_.empty() &&
               pending_.front()->done.load(std::memory_order_acquire)) {
            std::vector<std::uint8_t> &r = pending_.front()->response;
            scratch_.insert(scratch_.end(), r.begin(), r.end());
            pending_.pop_front();
        }
        if (scratch_.empty() || writeFailed_ || peerClosed_) {
            return;
        }
        std::size_t sent = 0;
        while (sent < scratch_.size()) {
            const ssize_t n =
                ::send(fd_, scratch_.data() + sent,
                       scratch_.size() - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    // Blocking would stall decoding; poll for space.
                    struct pollfd pfd = {fd_, POLLOUT, 0};
                    ::poll(&pfd, 1, 1000);
                    continue;
                }
                writeFailed_ = true; // Peer gone; drop the rest.
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    /** Waits out every in-flight submission before the thread exits. */
    void
    drainPending()
    {
        while (!pending_.empty()) {
            waitAndFlushHead();
        }
    }

    ServiceDaemon::Impl &daemon_;
    int fd_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::unique_ptr<Pending>> pending_;
    std::vector<std::uint8_t> scratch_;
    bool writeFailed_ = false;
    bool peerClosed_ = false;
};

} // namespace

void
ServiceDaemon::Impl::submit(Submission sub)
{
    inflight.fetch_add(1, std::memory_order_relaxed);
    while (!queue.tryPush(sub)) {
        std::this_thread::yield(); // Backpressure: workers are behind.
    }
    // seq_cst on both sides: the worker publishes sleepers before
    // reading queued, we publish queued before reading sleepers —
    // anything weaker lets both sides read stale zeros (store-buffer
    // reordering) and lose the wakeup.
    queued.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
        // The empty critical section pairs with the worker's
        // predicate check, closing the check-then-sleep window.
        { std::lock_guard<std::mutex> lock(submitMutex); }
        submitCv.notify_one();
    }
}

void
ServiceDaemon::Impl::workerLoop()
{
    std::vector<Submission> batch;
    std::vector<Query> batchQueries;
    std::vector<QueryResult> batchResults;
    std::vector<Connection *> waking;
    batch.reserve(config.batchMax);
    for (;;) {
        batch.clear();
        Submission sub;
        while (batch.size() < config.batchMax && queue.tryPop(sub)) {
            batch.push_back(std::move(sub));
        }
        if (batch.empty()) {
            std::unique_lock<std::mutex> lock(submitMutex);
            sleepers.fetch_add(1, std::memory_order_seq_cst);
            submitCv.wait(lock, [this] {
                return queued.load(std::memory_order_seq_cst) > 0 ||
                    workersStop.load(std::memory_order_acquire);
            });
            sleepers.fetch_sub(1, std::memory_order_seq_cst);
            if (workersStop.load(std::memory_order_acquire) &&
                queued.load(std::memory_order_acquire) == 0) {
                return;
            }
            continue;
        }
        queued.fetch_sub(batch.size(), std::memory_order_release);

        batchQueries.clear();
        batchResults.clear();
        batchQueries.reserve(batch.size());
        batchResults.resize(batch.size());
        for (const Submission &s : batch) {
            batchQueries.push_back(s.query);
        }
        kernel.evaluateBatch(batchQueries.data(), batchQueries.size(),
                             batchResults.data());

        queries.fetch_add(batch.size(), std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        mQueries->add(batch.size());
        mBatches->add();
        mBatchSize->observe(static_cast<double>(batch.size()));
#endif
        waking.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<std::uint8_t> response;
            appendQueryResponse(response, batchResults[i],
                                batch[i].json);
            Connection::complete(batch[i].slot, std::move(response));
            inflight.fetch_sub(1, std::memory_order_relaxed);
            if (std::find(waking.begin(), waking.end(),
                          batch[i].conn) == waking.end()) {
                waking.push_back(batch[i].conn);
            }
        }
        for (Connection *conn : waking) {
            conn->wake();
        }
        // Release the connections only after the wakes: a connection
        // with workerRefs > 0 is never reaped.
        for (const Submission &s : batch) {
            s.conn->workerRefs.fetch_sub(1,
                                         std::memory_order_release);
        }
    }
}

void
ServiceDaemon::Impl::acceptLoop()
{
    for (;;) {
        struct pollfd fds[2];
        fds[0] = {listenFd, POLLIN, 0};
        fds[1] = {stopPipe[0], POLLIN, 0};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;
        }
        if (stopping.load(std::memory_order_acquire)) {
            return;
        }
        if ((fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int cfd =
            ::accept4(listenFd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
            continue;
        }
        reapFinished(false);
        std::lock_guard<std::mutex> lock(connectionsMutex);
        if (connections.size() >= config.maxConnections) {
            refused.fetch_add(1, std::memory_order_relaxed);
            ::close(cfd);
            continue;
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        mConnections->add();
#endif
        auto conn = std::make_unique<Connection>(*this, cfd);
        Connection *raw = conn.get();
        conn->thread = std::thread([raw] { raw->run(); });
        connections.push_back(std::move(conn));
    }
}

void
ServiceDaemon::Impl::reapFinished(bool join_all)
{
    std::lock_guard<std::mutex> lock(connectionsMutex);
    auto it = connections.begin();
    while (it != connections.end()) {
        Connection &conn = **it;
        const bool drained = conn.finished.load(
                                 std::memory_order_acquire) &&
            conn.workerRefs.load(std::memory_order_acquire) == 0;
        if (drained || join_all) {
            if (conn.thread.joinable()) {
                conn.thread.join();
            }
            // Joined means all its responses completed; wait out a
            // worker still inside its final wake() call.
            while (conn.workerRefs.load(std::memory_order_acquire) >
                   0) {
                std::this_thread::yield();
            }
            it = connections.erase(it);
        } else {
            ++it;
        }
    }
}

std::string
ServiceDaemon::Impl::buildStatsJson() const
{
    const SolverCacheStats cache = solverCacheStats();
    std::string out = "{\"ok\":true,\"daemon\":{";
    const auto field = [&out](std::string_view name,
                              std::uint64_t value, bool comma = true) {
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(value);
        if (comma) {
            out += ',';
        }
    };
    field("connections_accepted",
          accepted.load(std::memory_order_relaxed));
    field("connections_refused",
          refused.load(std::memory_order_relaxed));
    field("queries", queries.load(std::memory_order_relaxed));
    field("batches", batches.load(std::memory_order_relaxed));
    field("validation_errors",
          validationErrors.load(std::memory_order_relaxed));
    field("protocol_errors",
          protocolErrors.load(std::memory_order_relaxed));
    field("inflight",
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              0, inflight.load(std::memory_order_relaxed))));
    field("workers", config.workers);
    field("batch_max", config.batchMax, false);
    out += "},\"solver_cache\":{";
    field("hits", cache.hits);
    field("misses", cache.misses);
    field("evictions", cache.evictions, false);
    out += "}}";
    return out;
}

ServiceDaemon::ServiceDaemon(DaemonConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

void
ServiceDaemon::start()
{
    Impl &impl = *impl_;
    if (impl.started.load()) {
        throw std::logic_error("daemon already started");
    }
    const std::string &path = impl.config.socketPath;
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        throw std::runtime_error(
            "socket path empty or too long for a unix socket: " +
            path);
    }
    if (::pipe(impl.stopPipe) != 0) {
        throw std::runtime_error("cannot create stop pipe");
    }
    impl.listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (impl.listenFd < 0) {
        throw std::runtime_error("cannot create unix socket");
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // Replace a stale socket file.
    if (::bind(impl.listenFd,
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(impl.listenFd, 256) != 0) {
        const int saved = errno;
        closeFd(impl.listenFd);
        throw std::runtime_error("cannot bind " + path + ": " +
                                 std::strerror(saved));
    }
#if SWCC_OBS_ENABLED
    obs::MetricsRegistry &registry = obs::metrics();
    impl.mQueries = &registry.counter("service.queries");
    impl.mBatches = &registry.counter("service.batches");
    impl.mValidationErrors =
        &registry.counter("service.validation_errors");
    impl.mProtocolErrors = &registry.counter("service.protocol_errors");
    impl.mConnections = &registry.counter("service.connections");
    impl.mBatchSize = &registry.histogram(
        "service.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
    registry.gauge("service.workers")
        .set(static_cast<double>(impl.config.workers));
    registry.gauge("service.batch_limit")
        .set(static_cast<double>(impl.config.batchMax));
#endif
    impl.workers.reserve(impl.config.workers);
    for (unsigned i = 0; i < impl.config.workers; ++i) {
        impl.workers.emplace_back([this] { impl_->workerLoop(); });
    }
    impl.acceptor = std::thread([this] { impl_->acceptLoop(); });
    impl.started.store(true);
    SWCC_LOG_INFO("swccd listening on " + path + " (" +
                  std::to_string(impl.config.workers) + " workers, " +
                  "batch<=" + std::to_string(impl.config.batchMax) +
                  ")");
}

void
ServiceDaemon::requestStop()
{
    Impl &impl = *impl_;
    impl.stopping.store(true, std::memory_order_release);
    if (impl.stopPipe[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(impl.stopPipe[1], &byte, 1);
    }
}

void
ServiceDaemon::stop()
{
    Impl &impl = *impl_;
    if (!impl.started.load() || impl.stopped.load()) {
        return;
    }
    requestStop();
    if (impl.acceptor.joinable()) {
        impl.acceptor.join();
    }
    // Connections flush their accepted work (workers still running),
    // then the workers drain and exit.
    impl.reapFinished(true);
    impl.workersStop.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(impl.submitMutex);
    }
    impl.submitCv.notify_all();
    for (std::thread &worker : impl.workers) {
        worker.join();
    }
    impl.workers.clear();
    closeFd(impl.listenFd);
    closeFd(impl.stopPipe[0]);
    closeFd(impl.stopPipe[1]);
    ::unlink(impl.config.socketPath.c_str());
    impl.stopped.store(true);
}

bool
ServiceDaemon::running() const
{
    return impl_->started.load() && !impl_->stopped.load();
}

const DaemonConfig &
ServiceDaemon::config() const
{
    return impl_->config;
}

DaemonStats
ServiceDaemon::stats() const
{
    const Impl &impl = *impl_;
    DaemonStats stats;
    stats.connectionsAccepted =
        impl.accepted.load(std::memory_order_relaxed);
    stats.connectionsRefused =
        impl.refused.load(std::memory_order_relaxed);
    stats.queries = impl.queries.load(std::memory_order_relaxed);
    stats.batches = impl.batches.load(std::memory_order_relaxed);
    stats.validationErrors =
        impl.validationErrors.load(std::memory_order_relaxed);
    stats.protocolErrors =
        impl.protocolErrors.load(std::memory_order_relaxed);
    return stats;
}

std::string
ServiceDaemon::statsJson() const
{
    return impl_->buildStatsJson();
}

} // namespace swcc::service
