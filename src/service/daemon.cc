#include "service/daemon.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/campaign/atomic_file.hh"
#include "core/obs/json.hh"
#include "core/obs/log.hh"
#include "core/obs/metrics.hh"
#include "core/obs/prometheus.hh"
#include "core/obs/trace.hh"
#include "core/solver_cache.hh"
#include "core/types.hh"
#include "service/flight_recorder.hh"
#include "service/latency_histogram.hh"
#include "service/mpmc_queue.hh"
#include "service/protocol.hh"
#include "service/trace_context.hh"

namespace swcc::service
{

namespace
{

/** Submission queue capacity (power of two; ~100x a full batch). */
constexpr std::size_t kQueueCapacity = 8192;

/** Connection read chunk size. */
constexpr std::size_t kReadChunk = 64 * 1024;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

namespace
{

/**
 * One response slot, owned by its connection, completed exactly once
 * (by a worker, or inline on the connection thread for control and
 * error responses).
 */
struct Pending
{
    std::vector<std::uint8_t> response;
    std::atomic<bool> done{false};
    /** For the send-stage flow event when the response is flushed. */
    std::uint64_t traceId = 0;
};

struct Connection;

/** One decoded, validated query travelling to a batching worker. */
struct Submission
{
    Query query;
    Connection *conn = nullptr;
    Pending *slot = nullptr;
    bool json = false;
    TraceContext trace;
    /** Daemon-clock nanoseconds: decode start and queue entry. */
    std::uint64_t decodeNs = 0;
    std::uint64_t enqueueNs = 0;
};

/**
 * Per-worker latency telemetry. Single-writer (the owning worker)
 * under a mutex taken once per batch; scrapes copy under the same
 * mutex, so a scrape costs the worker at most one histogram copy.
 */
struct WorkerTelemetry
{
    std::mutex mutex;
    /** Decode-to-completion latency per query (ns). */
    LatencyHistogram request;
    /** Submission-queue wait per query (ns). */
    LatencyHistogram queueWait;
    /** Whole-batch solver time per batch (ns). */
    LatencyHistogram solve;
    /** Queries per batch. */
    LatencyHistogram batchSize;
};

} // namespace

struct ServiceDaemon::Impl
{
    explicit Impl(DaemonConfig cfg)
        : config(std::move(cfg)), kernel(config.limits),
          flight(config.flightRecords), queue(kQueueCapacity)
    {
        if (config.batchMax == 0) {
            config.batchMax = 1;
        }
        if (config.workers == 0) {
            config.workers = 1;
        }
        workerStats.reserve(config.workers);
        for (unsigned i = 0; i < config.workers; ++i) {
            workerStats.push_back(
                std::make_unique<WorkerTelemetry>());
        }
    }

    DaemonConfig config;
    ServiceKernel kernel;

    /** Telemetry timebase: all *Ns stamps count from this epoch. */
    const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
    }

    /** Trace ids start at 1 so 0 always means "untraced". */
    std::atomic<std::uint64_t> nextTraceId{1};

    FlightRecorder flight;
    std::vector<std::unique_ptr<WorkerTelemetry>> workerStats;

    MpmcQueue<Submission> queue;
    std::atomic<std::size_t> queued{0};
    std::mutex submitMutex;
    std::condition_variable submitCv;
    std::atomic<int> sleepers{0};
    std::atomic<bool> workersStop{false};

    int listenFd = -1;
    int stopPipe[2] = {-1, -1};
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};

    std::thread acceptor;
    std::vector<std::thread> workers;
    mutable std::mutex connectionsMutex;
    std::vector<std::unique_ptr<Connection>> connections;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> validationErrors{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::int64_t> inflight{0};

#if SWCC_OBS_ENABLED
    obs::Counter *mQueries = nullptr;
    obs::Counter *mBatches = nullptr;
    obs::Counter *mValidationErrors = nullptr;
    obs::Counter *mProtocolErrors = nullptr;
    obs::Counter *mConnections = nullptr;
    obs::Histogram *mBatchSize = nullptr;
    obs::Histogram *mQueueWaitUs = nullptr;

    /** Interned span/flow names (decode → queue → batch → solve →
     * send, all flow events keyed "svc.query"). */
    std::uint32_t nDecode = 0;
    std::uint32_t nQueue = 0;
    std::uint32_t nBatch = 0;
    std::uint32_t nSolve = 0;
    std::uint32_t nSend = 0;
    std::uint32_t nFlow = 0;
#endif

    void acceptLoop();
    void workerLoop(unsigned index);
    void workerBody(unsigned index);
    void submit(Submission sub);
    std::string buildStatsJson() const;
    std::string buildScrape() const;
    std::string dumpFlight() const;
    void reapFinished(bool join_all);
};

namespace
{

/** Per-client state and thread body. */
struct Connection
{
    Connection(ServiceDaemon::Impl &daemon, int fd)
        : daemon_(daemon), fd_(fd)
    {
    }

    /** Worker side: publish a finished response (no wakeup yet). */
    static void
    complete(Pending *slot, std::vector<std::uint8_t> response)
    {
        slot->response = std::move(response);
        slot->done.store(true, std::memory_order_release);
    }

    /**
     * Worker side: wake the flusher after a run of complete() calls —
     * one lock+notify per connection per batch, not per response.
     * The empty critical section serializes against the flusher's
     * predicate-check-then-sleep window.
     */
    void
    wake()
    {
        { std::lock_guard<std::mutex> lock(mutex_); }
        cv_.notify_one();
    }

    void
    run()
    {
        std::vector<std::uint8_t> buffer;
        std::size_t offset = 0;
        bool close_requested = false;
        while (!close_requested) {
            if (!pending_.empty()) {
                waitAndFlushHead();
                continue;
            }
            struct pollfd fds[2];
            fds[0] = {fd_, POLLIN, 0};
            fds[1] = {daemon_.stopPipe[0], POLLIN, 0};
            if (::poll(fds, 2, -1) < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;
            }
            if (daemon_.stopping.load(std::memory_order_acquire)) {
                // Drain whatever the client already sent, answer it,
                // then leave: an accepted request is always served.
                readAvailable(buffer);
                processBuffer(buffer, offset, close_requested);
                break;
            }
            if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                continue;
            }
            if (!readAvailable(buffer)) {
                if (buffer.size() > offset) {
                    // Mid-request disconnect: a partial frame was
                    // abandoned. Per-connection only; just count it.
                    daemon_.protocolErrors.fetch_add(
                        1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
                    daemon_.mProtocolErrors->add();
#endif
                }
                break;
            }
            processBuffer(buffer, offset, close_requested);
        }
        drainPending();
        closeFd(fd_);
        finished.store(true, std::memory_order_release);
    }

    std::thread thread;
    std::atomic<bool> finished{false};
    /**
     * Submissions a worker may still touch (slot fill + wake()).
     * Reaping requires finished && workerRefs == 0, otherwise a
     * worker could call wake() on a destroyed connection.
     */
    std::atomic<std::uint64_t> workerRefs{0};

  private:
    /**
     * Non-blocking reads until EAGAIN; false once the peer has
     * disconnected (EOF or hard error).
     */
    bool
    readAvailable(std::vector<std::uint8_t> &buffer)
    {
        for (;;) {
            std::uint8_t chunk[kReadChunk];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n > 0) {
                buffer.insert(buffer.end(), chunk, chunk + n);
                if (static_cast<std::size_t>(n) < sizeof chunk) {
                    return true;
                }
                continue;
            }
            if (n == 0) {
                peerClosed_ = true;
                return false;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return true;
            }
            if (errno == EINTR) {
                continue;
            }
            peerClosed_ = true;
            return false;
        }
    }

    /** Decodes every complete frame in the buffer and dispatches it. */
    void
    processBuffer(std::vector<std::uint8_t> &buffer,
                  std::size_t &offset, bool &close_requested)
    {
        while (!close_requested) {
            RequestFrame frame;
            std::string error;
            std::size_t consumed = 0;
            const std::uint64_t decodeNs = daemon_.nowNs();
#if SWCC_OBS_ENABLED
            const double decodeStartUs =
                obs::tracer().enabled() ? obs::tracer().nowUs() : 0.0;
#else
            const double decodeStartUs = 0.0;
#endif
            const DecodeStatus status =
                decodeRequest(buffer.data() + offset,
                              buffer.size() - offset, consumed, frame,
                              error);
            if (status == DecodeStatus::NeedMore) {
                break;
            }
            if (status == DecodeStatus::BadFrame) {
                daemon_.protocolErrors.fetch_add(
                    1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
                daemon_.mProtocolErrors->add();
#endif
                // Framing is lost: answer once, then close. Guess the
                // response dialect from the first byte.
                const bool json =
                    buffer.size() > offset && buffer[offset] == '{';
                completeInline(ResponseStatus::BadRequest, error,
                               json);
                close_requested = true;
                break;
            }
            offset += consumed;
            dispatch(frame, decodeNs, decodeStartUs);
        }
        if (offset > 0) {
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(offset));
            offset = 0;
        }
        // Opportunistic flush of anything already answered inline.
        flushDonePrefix();
    }

    /** Routes one well-framed request. */
    void
    dispatch(RequestFrame &frame, std::uint64_t decodeNs,
             double decodeStartUs)
    {
        (void)decodeStartUs;
        if (!frame.fieldError.empty()) {
            daemon_.validationErrors.fetch_add(
                1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
            daemon_.mValidationErrors->add();
#endif
            completeInline(ResponseStatus::BadRequest,
                           frame.fieldError, frame.json);
            return;
        }
        switch (frame.kind) {
          case RequestKind::Stats:
            completeInline(ResponseStatus::Ok,
                           daemon_.buildStatsJson(), frame.json);
            return;
          case RequestKind::Scrape: {
            const std::string text = daemon_.buildScrape();
            // The JSON dialect answers with one JSON line, so the
            // multi-line exposition text travels as an escaped field.
            completeInline(ResponseStatus::Ok,
                           frame.json
                               ? "{\"ok\":true,\"scrape\":\"" +
                                   obs::jsonEscape(text) + "\"}"
                               : text,
                           frame.json);
            return;
          }
          case RequestKind::Ping:
            completeInline(ResponseStatus::Ok,
                           frame.json ? "{\"ok\":true,\"pong\":true}"
                                      : "pong",
                           frame.json);
            return;
          case RequestKind::Query:
            break;
        }
        // Field validation happens here, on the connection thread, so
        // a malformed query costs the workers nothing.
        std::string error = daemon_.kernel.validate(frame.query);
        if (!error.empty()) {
            daemon_.validationErrors.fetch_add(
                1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
            daemon_.mValidationErrors->add();
#endif
            QueryResult result;
            result.domain = frame.query.domain;
            result.error = std::move(error);
            std::vector<std::uint8_t> response;
            appendQueryResponse(response, result, frame.json);
            pushDoneSlot(std::move(response));
            return;
        }
        frame.trace.traceId = daemon_.nextTraceId.fetch_add(
            1, std::memory_order_relaxed);
        frame.trace.spanId = 1;
        auto slot = std::make_unique<Pending>();
        slot->traceId = frame.trace.traceId;
        Submission sub;
        sub.query = frame.query;
        sub.conn = this;
        sub.slot = slot.get();
        sub.json = frame.json;
        sub.trace = frame.trace;
        sub.decodeNs = decodeNs;
        pending_.push_back(std::move(slot));
#if SWCC_OBS_ENABLED
        obs::TraceRecorder &trc = obs::tracer();
        if (trc.enabled()) {
            const std::int32_t tid = trc.callerTid();
            if (!threadNamed_) {
                threadNamed_ = true;
                trc.setThreadName(obs::TraceRecorder::kWallPid, tid,
                                  "swccd.conn");
            }
            const double now = trc.nowUs();
            trc.recordComplete(daemon_.nDecode,
                               obs::TraceRecorder::kWallPid, tid,
                               decodeStartUs, now - decodeStartUs);
            // Flow start binds inside the decode slice; the async
            // queue interval ends on whichever worker pops it.
            trc.recordFlowStart(daemon_.nFlow,
                                obs::TraceRecorder::kWallPid, tid,
                                (decodeStartUs + now) * 0.5,
                                sub.trace.traceId);
            trc.recordAsyncBegin(daemon_.nQueue,
                                 obs::TraceRecorder::kWallPid, tid,
                                 now, sub.trace.traceId);
        }
#endif
        sub.enqueueNs = daemon_.nowNs();
        workerRefs.fetch_add(1, std::memory_order_acq_rel);
        daemon_.submit(std::move(sub));
    }

    /** Queues an already-encoded (or text) response, in order. */
    void
    completeInline(ResponseStatus status, std::string_view text,
                   bool json)
    {
        std::vector<std::uint8_t> response;
        appendTextResponse(response, status, text, json);
        pushDoneSlot(std::move(response));
    }

    void
    pushDoneSlot(std::vector<std::uint8_t> response)
    {
        auto slot = std::make_unique<Pending>();
        slot->response = std::move(response);
        slot->done.store(true, std::memory_order_release);
        pending_.push_back(std::move(slot));
    }

    /** Sleeps until the head response is ready, then writes a burst. */
    void
    waitAndFlushHead()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return pending_.front()->done.load(
                    std::memory_order_acquire);
            });
        }
        flushDonePrefix();
    }

    /**
     * Writes every contiguous completed response from the head of the
     * queue in one syscall burst (the response-side batching: a
     * worker batch completes together and leaves here together).
     */
    void
    flushDonePrefix()
    {
        scratch_.clear();
#if SWCC_OBS_ENABLED
        flushedIds_.clear();
#endif
        while (!pending_.empty() &&
               pending_.front()->done.load(std::memory_order_acquire)) {
#if SWCC_OBS_ENABLED
            if (pending_.front()->traceId != 0) {
                flushedIds_.push_back(pending_.front()->traceId);
            }
#endif
            std::vector<std::uint8_t> &r = pending_.front()->response;
            scratch_.insert(scratch_.end(), r.begin(), r.end());
            pending_.pop_front();
        }
        if (scratch_.empty() || writeFailed_ || peerClosed_) {
            return;
        }
#if SWCC_OBS_ENABLED
        obs::TraceRecorder &trc = obs::tracer();
        const bool tracing = trc.enabled();
        const double sendStartUs = tracing ? trc.nowUs() : 0.0;
#endif
        std::size_t sent = 0;
        while (sent < scratch_.size()) {
            const ssize_t n =
                ::send(fd_, scratch_.data() + sent,
                       scratch_.size() - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    // Blocking would stall decoding; poll for space.
                    struct pollfd pfd = {fd_, POLLOUT, 0};
                    ::poll(&pfd, 1, 1000);
                    continue;
                }
                writeFailed_ = true; // Peer gone; drop the rest.
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
#if SWCC_OBS_ENABLED
        if (tracing && !flushedIds_.empty()) {
            const std::int32_t tid = trc.callerTid();
            const double sendEndUs = trc.nowUs();
            trc.recordComplete(daemon_.nSend,
                               obs::TraceRecorder::kWallPid, tid,
                               sendStartUs, sendEndUs - sendStartUs);
            // Flow arrows terminate inside the send slice.
            const double midUs = (sendStartUs + sendEndUs) * 0.5;
            for (const std::uint64_t id : flushedIds_) {
                trc.recordFlowEnd(daemon_.nFlow,
                                  obs::TraceRecorder::kWallPid, tid,
                                  midUs, id);
            }
        }
#endif
    }

    /** Waits out every in-flight submission before the thread exits. */
    void
    drainPending()
    {
        while (!pending_.empty()) {
            waitAndFlushHead();
        }
    }

    ServiceDaemon::Impl &daemon_;
    int fd_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::unique_ptr<Pending>> pending_;
    std::vector<std::uint8_t> scratch_;
#if SWCC_OBS_ENABLED
    std::vector<std::uint64_t> flushedIds_;
    bool threadNamed_ = false;
#endif
    bool writeFailed_ = false;
    bool peerClosed_ = false;
};

} // namespace

void
ServiceDaemon::Impl::submit(Submission sub)
{
    inflight.fetch_add(1, std::memory_order_relaxed);
    while (!queue.tryPush(sub)) {
        std::this_thread::yield(); // Backpressure: workers are behind.
    }
    // seq_cst on both sides: the worker publishes sleepers before
    // reading queued, we publish queued before reading sleepers —
    // anything weaker lets both sides read stale zeros (store-buffer
    // reordering) and lose the wakeup.
    queued.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
        // The empty critical section pairs with the worker's
        // predicate check, closing the check-then-sleep window.
        { std::lock_guard<std::mutex> lock(submitMutex); }
        submitCv.notify_one();
    }
}

void
ServiceDaemon::Impl::workerLoop(unsigned index)
{
    try {
        workerBody(index);
    } catch (const std::exception &e) {
        // A dying worker strands its in-flight queries; dump the
        // flight recorder so the post-mortem shows what it was doing.
        SWCC_LOG_ERROR("swccd worker " + std::to_string(index) +
                       " died: " + e.what());
        try {
            SWCC_LOG_ERROR("flight recorder dumped to " + dumpFlight());
        } catch (const std::exception &dump_error) {
            SWCC_LOG_ERROR(std::string("flight-recorder dump failed: ") +
                           dump_error.what());
        }
    }
}

void
ServiceDaemon::Impl::workerBody(unsigned index)
{
    WorkerTelemetry &telemetry = *workerStats[index];
    const bool slowLog = config.slowQueryUs > 0;
    std::vector<Submission> batch;
    std::vector<Query> batchQueries;
    std::vector<QueryResult> batchResults;
    std::vector<Connection *> waking;
    batch.reserve(config.batchMax);
#if SWCC_OBS_ENABLED
    obs::TraceRecorder &trc = obs::tracer();
    if (trc.enabled()) {
        trc.setThreadName(obs::TraceRecorder::kWallPid,
                          trc.callerTid(),
                          "swccd.worker" + std::to_string(index));
    }
#endif
    for (;;) {
        batch.clear();
        Submission sub;
        while (batch.size() < config.batchMax && queue.tryPop(sub)) {
            batch.push_back(std::move(sub));
        }
        if (batch.empty()) {
            std::unique_lock<std::mutex> lock(submitMutex);
            sleepers.fetch_add(1, std::memory_order_seq_cst);
            submitCv.wait(lock, [this] {
                return queued.load(std::memory_order_seq_cst) > 0 ||
                    workersStop.load(std::memory_order_acquire);
            });
            sleepers.fetch_sub(1, std::memory_order_seq_cst);
            if (workersStop.load(std::memory_order_acquire) &&
                queued.load(std::memory_order_acquire) == 0) {
                return;
            }
            continue;
        }
        queued.fetch_sub(batch.size(), std::memory_order_release);
        const std::uint64_t popNs = nowNs();

#if SWCC_OBS_ENABLED
        const bool tracing = trc.enabled();
        const std::int32_t tid = tracing ? trc.callerTid() : 0;
        const double batchStartUs = tracing ? trc.nowUs() : 0.0;
        if (tracing) {
            // Close each member's cross-thread queue interval here,
            // on the worker that picked it up.
            for (const Submission &s : batch) {
                trc.recordAsyncEnd(nQueue,
                                   obs::TraceRecorder::kWallPid, tid,
                                   batchStartUs, s.trace.traceId);
            }
        }
#endif
        const SolverCacheStats cacheBefore =
            slowLog ? solverCacheStats() : SolverCacheStats{};

        batchQueries.clear();
        batchResults.clear();
        batchQueries.reserve(batch.size());
        batchResults.resize(batch.size());
        for (const Submission &s : batch) {
            batchQueries.push_back(s.query);
        }
        const std::uint64_t solveStartNs = nowNs();
#if SWCC_OBS_ENABLED
        const double solveStartUs = tracing ? trc.nowUs() : 0.0;
#endif
        kernel.evaluateBatch(batchQueries.data(), batchQueries.size(),
                             batchResults.data());
        const std::uint64_t solveNs = nowNs() - solveStartNs;
#if SWCC_OBS_ENABLED
        if (tracing) {
            const double solveEndUs = trc.nowUs();
            trc.recordComplete(nSolve, obs::TraceRecorder::kWallPid,
                               tid, solveStartUs,
                               solveEndUs - solveStartUs);
            // One flow step per member, landing inside the solve
            // slice — this is what links a batch to all its queries.
            const double midUs = (solveStartUs + solveEndUs) * 0.5;
            for (const Submission &s : batch) {
                trc.recordFlowStep(nFlow,
                                   obs::TraceRecorder::kWallPid, tid,
                                   midUs, s.trace.traceId);
            }
        }
#endif

        queries.fetch_add(batch.size(), std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        mQueries->add(batch.size());
        mBatches->add();
        mBatchSize->observe(static_cast<double>(batch.size()));
#endif
        waking.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<std::uint8_t> response;
            appendQueryResponse(response, batchResults[i],
                                batch[i].json);
            Connection::complete(batch[i].slot, std::move(response));
            inflight.fetch_sub(1, std::memory_order_relaxed);
            if (std::find(waking.begin(), waking.end(),
                          batch[i].conn) == waking.end()) {
                waking.push_back(batch[i].conn);
            }
        }
        const std::uint64_t completeNs = nowNs();
        for (Connection *conn : waking) {
            conn->wake();
        }
#if SWCC_OBS_ENABLED
        if (tracing) {
            trc.recordComplete(nBatch, obs::TraceRecorder::kWallPid,
                               tid, batchStartUs,
                               trc.nowUs() - batchStartUs);
        }
#endif

        // Telemetry happens after the wakes so the flush path never
        // waits on it; slots must not be touched past this point.
        {
            std::lock_guard<std::mutex> lock(telemetry.mutex);
            telemetry.batchSize.record(batch.size());
            telemetry.solve.record(solveNs);
            for (const Submission &s : batch) {
                telemetry.queueWait.record(popNs - s.enqueueNs);
                telemetry.request.record(completeNs - s.decodeNs);
            }
        }
#if SWCC_OBS_ENABLED
        for (const Submission &s : batch) {
            mQueueWaitUs->observe(
                static_cast<double>(popNs - s.enqueueNs) / 1000.0);
        }
#endif
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Submission &s = batch[i];
            FlightRecord record;
            record.traceId = s.trace.traceId;
            record.decodeNs = s.decodeNs;
            record.queueWaitNs = popNs - s.enqueueNs;
            record.solveNs = solveNs;
            record.totalNs = completeNs - s.decodeNs;
            record.batchSize =
                static_cast<std::uint32_t>(batch.size());
            record.size = s.query.size;
            record.domain = s.query.domain;
            record.scheme = s.query.scheme;
            record.ok = batchResults[i].error.empty();
            flight.record(record);
        }
        if (slowLog) {
            const SolverCacheStats cacheAfter = solverCacheStats();
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const Submission &s = batch[i];
                const std::uint64_t totalNs = completeNs - s.decodeNs;
                if (totalNs < config.slowQueryUs * 1000) {
                    continue;
                }
                SWCC_LOG_WARN(
                    "{\"slow_query\":{\"trace_id\":" +
                    std::to_string(s.trace.traceId) +
                    ",\"domain\":\"" +
                    std::string(domainName(s.query.domain)) +
                    "\",\"scheme\":\"" +
                    std::string(schemeName(s.query.scheme)) +
                    "\",\"size\":" + std::to_string(s.query.size) +
                    ",\"queue_wait_us\":" +
                    std::to_string((popNs - s.enqueueNs) / 1000) +
                    ",\"solve_us\":" +
                    std::to_string(solveNs / 1000) +
                    ",\"total_us\":" + std::to_string(totalNs / 1000) +
                    ",\"batch_size\":" +
                    std::to_string(batch.size()) +
                    ",\"cache_hits\":" +
                    std::to_string(cacheAfter.hits - cacheBefore.hits) +
                    ",\"cache_misses\":" +
                    std::to_string(cacheAfter.misses -
                                   cacheBefore.misses) +
                    "}}");
            }
        }
        // Release the connections only after the wakes: a connection
        // with workerRefs > 0 is never reaped.
        for (const Submission &s : batch) {
            s.conn->workerRefs.fetch_sub(1,
                                         std::memory_order_release);
        }
    }
}

void
ServiceDaemon::Impl::acceptLoop()
{
    for (;;) {
        struct pollfd fds[2];
        fds[0] = {listenFd, POLLIN, 0};
        fds[1] = {stopPipe[0], POLLIN, 0};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;
        }
        if (stopping.load(std::memory_order_acquire)) {
            return;
        }
        if ((fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int cfd =
            ::accept4(listenFd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
            continue;
        }
        reapFinished(false);
        std::lock_guard<std::mutex> lock(connectionsMutex);
        if (connections.size() >= config.maxConnections) {
            refused.fetch_add(1, std::memory_order_relaxed);
            ::close(cfd);
            continue;
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        mConnections->add();
#endif
        auto conn = std::make_unique<Connection>(*this, cfd);
        Connection *raw = conn.get();
        conn->thread = std::thread([raw] { raw->run(); });
        connections.push_back(std::move(conn));
    }
}

void
ServiceDaemon::Impl::reapFinished(bool join_all)
{
    std::lock_guard<std::mutex> lock(connectionsMutex);
    auto it = connections.begin();
    while (it != connections.end()) {
        Connection &conn = **it;
        const bool drained = conn.finished.load(
                                 std::memory_order_acquire) &&
            conn.workerRefs.load(std::memory_order_acquire) == 0;
        if (drained || join_all) {
            if (conn.thread.joinable()) {
                conn.thread.join();
            }
            // Joined means all its responses completed; wait out a
            // worker still inside its final wake() call.
            while (conn.workerRefs.load(std::memory_order_acquire) >
                   0) {
                std::this_thread::yield();
            }
            it = connections.erase(it);
        } else {
            ++it;
        }
    }
}

std::string
ServiceDaemon::Impl::buildStatsJson() const
{
    const SolverCacheStats cache = solverCacheStats();
    std::string out = "{\"ok\":true,\"daemon\":{";
    const auto field = [&out](std::string_view name,
                              std::uint64_t value, bool comma = true) {
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(value);
        if (comma) {
            out += ',';
        }
    };
    field("connections_accepted",
          accepted.load(std::memory_order_relaxed));
    field("connections_refused",
          refused.load(std::memory_order_relaxed));
    field("queries", queries.load(std::memory_order_relaxed));
    field("batches", batches.load(std::memory_order_relaxed));
    field("validation_errors",
          validationErrors.load(std::memory_order_relaxed));
    field("protocol_errors",
          protocolErrors.load(std::memory_order_relaxed));
    field("inflight",
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              0, inflight.load(std::memory_order_relaxed))));
    field("workers", config.workers);
    field("batch_max", config.batchMax, false);
    out += "},\"solver_cache\":{";
    field("hits", cache.hits);
    field("misses", cache.misses);
    field("evictions", cache.evictions, false);
    out += "}}";
    return out;
}

namespace
{

/**
 * Converts a merged LatencyHistogram (nanoseconds) to a sparse
 * MetricSnapshot in the given unit. Only occupied buckets become
 * `le` bounds, and adjacent occupied buckets closer than 1/32
 * (3.125%) apart are coalesced into the higher bound — a long-lived
 * daemon occupies hundreds of the ~1.9k 1.6%-spaced buckets, and a
 * 10 Hz scraper should not pay for resolution no dashboard can
 * show. Folding counts upward keeps every `le` line a correct
 * cumulative count; derived quantiles read at most 3.1% high.
 */
obs::MetricSnapshot
histogramSnapshot(std::string name, const LatencyHistogram &hist,
                  double scale)
{
    obs::MetricSnapshot snap;
    snap.name = std::move(name);
    snap.kind = obs::MetricSnapshot::Kind::Histogram;
    snap.count = hist.count();
    snap.sum = static_cast<double>(hist.sum()) * scale;
    const std::vector<std::uint64_t> &buckets = hist.buckets();
    std::uint64_t pending = 0;
    double pendingBound = 0.0;
    double anchor = -1.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) {
            continue;
        }
        const double bound =
            static_cast<double>(
                LatencyHistogram::bucketUpperBound(i)) *
            scale;
        if (anchor > 0.0 && bound <= anchor * (1.0 + 1.0 / 32)) {
            // Within 3.125% of the run's first bound: fold upward.
            pending += buckets[i];
            pendingBound = bound;
            continue;
        }
        if (pending > 0) {
            snap.bounds.push_back(pendingBound);
            snap.counts.push_back(pending);
        }
        anchor = bound;
        pending = buckets[i];
        pendingBound = bound;
    }
    if (pending > 0) {
        snap.bounds.push_back(pendingBound);
        snap.counts.push_back(pending);
    }
    // The +Inf bucket (counts has bounds.size() + 1 entries).
    snap.counts.push_back(0);
    return snap;
}

obs::MetricSnapshot
scalarSnapshot(std::string name, obs::MetricSnapshot::Kind kind,
               double value)
{
    obs::MetricSnapshot snap;
    snap.name = std::move(name);
    snap.kind = kind;
    snap.value = value;
    return snap;
}

} // namespace

std::string
ServiceDaemon::Impl::buildScrape() const
{
    using Kind = obs::MetricSnapshot::Kind;
    const SolverCacheStats cache = solverCacheStats();

    // Manual section first: always-on atomics plus gauges sampled at
    // scrape time. These stay meaningful under SWCC_OBS=OFF.
    std::vector<obs::MetricSnapshot> snaps;
    const auto counter = [&](std::string name, std::uint64_t value) {
        snaps.push_back(scalarSnapshot(std::move(name), Kind::Counter,
                                       static_cast<double>(value)));
    };
    const auto gauge = [&](std::string name, double value) {
        snaps.push_back(
            scalarSnapshot(std::move(name), Kind::Gauge, value));
    };
    counter("service.queries",
            queries.load(std::memory_order_relaxed));
    counter("service.batches",
            batches.load(std::memory_order_relaxed));
    counter("service.connections_accepted",
            accepted.load(std::memory_order_relaxed));
    counter("service.connections_refused",
            refused.load(std::memory_order_relaxed));
    counter("service.validation_errors",
            validationErrors.load(std::memory_order_relaxed));
    counter("service.protocol_errors",
            protocolErrors.load(std::memory_order_relaxed));
    counter("solver_cache.hits", cache.hits);
    counter("solver_cache.misses", cache.misses);
    counter("solver_cache.evictions", cache.evictions);
    gauge("service.inflight",
          static_cast<double>(std::max<std::int64_t>(
              0, inflight.load(std::memory_order_relaxed))));
    gauge("service.queue_depth",
          static_cast<double>(queued.load(std::memory_order_relaxed)));
    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        gauge("service.connections_active",
              static_cast<double>(connections.size()));
    }
    gauge("service.workers", static_cast<double>(config.workers));
    gauge("service.batch_limit",
          static_cast<double>(config.batchMax));
    gauge("service.flight_records",
          static_cast<double>(std::min<std::uint64_t>(
              flight.totalRecorded(), flight.capacity())));

    // Merged per-worker latency histograms, in microseconds.
    LatencyHistogram request;
    LatencyHistogram queueWait;
    LatencyHistogram solve;
    LatencyHistogram batchSize;
    for (const auto &stats : workerStats) {
        std::lock_guard<std::mutex> lock(stats->mutex);
        request.merge(stats->request);
        queueWait.merge(stats->queueWait);
        solve.merge(stats->solve);
        batchSize.merge(stats->batchSize);
    }
    constexpr double kNsToUs = 1.0 / 1000.0;
    snaps.push_back(
        histogramSnapshot("service.request_us", request, kNsToUs));
    snaps.push_back(histogramSnapshot("service.queue_wait_us",
                                      queueWait, kNsToUs));
    snaps.push_back(
        histogramSnapshot("service.solve_us", solve, kNsToUs));
    snaps.push_back(
        histogramSnapshot("service.batch_size", batchSize, 1.0));

    std::string out;
    std::set<std::string> families;
    for (const obs::MetricSnapshot &snap : snaps) {
        families.insert(obs::promFamilyName(snap));
        obs::appendPrometheus(out, snap);
    }
    // Registry metrics ride along when compiled in; families already
    // rendered from live atomics above win (e.g. service_queries).
    for (const obs::MetricSnapshot &snap :
         obs::metrics().snapshot()) {
        if (families.insert(obs::promFamilyName(snap)).second) {
            obs::appendPrometheus(out, snap);
        }
    }
    return out;
}

std::string
ServiceDaemon::Impl::dumpFlight() const
{
    const std::string path = config.flightRecorderPath.empty()
        ? config.socketPath + ".flight.json"
        : config.flightRecorderPath;
    const std::string json = flight.toJson();
    campaign::atomicWriteFile(
        path, [&](std::ostream &os) { os << json; });
    return path;
}

ServiceDaemon::ServiceDaemon(DaemonConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

void
ServiceDaemon::start()
{
    Impl &impl = *impl_;
    if (impl.started.load()) {
        throw std::logic_error("daemon already started");
    }
    const std::string &path = impl.config.socketPath;
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        throw std::runtime_error(
            "socket path empty or too long for a unix socket: " +
            path);
    }
    if (::pipe(impl.stopPipe) != 0) {
        throw std::runtime_error("cannot create stop pipe");
    }
    impl.listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (impl.listenFd < 0) {
        throw std::runtime_error("cannot create unix socket");
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // Replace a stale socket file.
    if (::bind(impl.listenFd,
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(impl.listenFd, 256) != 0) {
        const int saved = errno;
        closeFd(impl.listenFd);
        throw std::runtime_error("cannot bind " + path + ": " +
                                 std::strerror(saved));
    }
#if SWCC_OBS_ENABLED
    obs::MetricsRegistry &registry = obs::metrics();
    impl.mQueries = &registry.counter("service.queries");
    impl.mBatches = &registry.counter("service.batches");
    impl.mValidationErrors =
        &registry.counter("service.validation_errors");
    impl.mProtocolErrors = &registry.counter("service.protocol_errors");
    impl.mConnections = &registry.counter("service.connections");
    impl.mBatchSize = &registry.histogram(
        "service.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
    impl.mQueueWaitUs = &registry.histogram(
        "service.queue_wait_us",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
         20000, 50000, 100000});
    registry.gauge("service.workers")
        .set(static_cast<double>(impl.config.workers));
    registry.gauge("service.batch_limit")
        .set(static_cast<double>(impl.config.batchMax));
    obs::TraceRecorder &trc = obs::tracer();
    impl.nDecode = trc.intern("svc.decode");
    impl.nQueue = trc.intern("svc.queue");
    impl.nBatch = trc.intern("svc.batch");
    impl.nSolve = trc.intern("svc.solve");
    impl.nSend = trc.intern("svc.send");
    impl.nFlow = trc.intern("svc.query");
#endif
    impl.workers.reserve(impl.config.workers);
    for (unsigned i = 0; i < impl.config.workers; ++i) {
        impl.workers.emplace_back(
            [this, i] { impl_->workerLoop(i); });
    }
    impl.acceptor = std::thread([this] { impl_->acceptLoop(); });
    impl.started.store(true);
    SWCC_LOG_INFO("swccd listening on " + path + " (" +
                  std::to_string(impl.config.workers) + " workers, " +
                  "batch<=" + std::to_string(impl.config.batchMax) +
                  ")");
}

void
ServiceDaemon::requestStop()
{
    Impl &impl = *impl_;
    impl.stopping.store(true, std::memory_order_release);
    if (impl.stopPipe[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(impl.stopPipe[1], &byte, 1);
    }
}

void
ServiceDaemon::stop()
{
    Impl &impl = *impl_;
    if (!impl.started.load() || impl.stopped.load()) {
        return;
    }
    requestStop();
    if (impl.acceptor.joinable()) {
        impl.acceptor.join();
    }
    // Connections flush their accepted work (workers still running),
    // then the workers drain and exit.
    impl.reapFinished(true);
    impl.workersStop.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(impl.submitMutex);
    }
    impl.submitCv.notify_all();
    for (std::thread &worker : impl.workers) {
        worker.join();
    }
    impl.workers.clear();
    closeFd(impl.listenFd);
    closeFd(impl.stopPipe[0]);
    closeFd(impl.stopPipe[1]);
    ::unlink(impl.config.socketPath.c_str());
    impl.stopped.store(true);
}

bool
ServiceDaemon::running() const
{
    return impl_->started.load() && !impl_->stopped.load();
}

const DaemonConfig &
ServiceDaemon::config() const
{
    return impl_->config;
}

DaemonStats
ServiceDaemon::stats() const
{
    const Impl &impl = *impl_;
    DaemonStats stats;
    stats.connectionsAccepted =
        impl.accepted.load(std::memory_order_relaxed);
    stats.connectionsRefused =
        impl.refused.load(std::memory_order_relaxed);
    stats.queries = impl.queries.load(std::memory_order_relaxed);
    stats.batches = impl.batches.load(std::memory_order_relaxed);
    stats.validationErrors =
        impl.validationErrors.load(std::memory_order_relaxed);
    stats.protocolErrors =
        impl.protocolErrors.load(std::memory_order_relaxed);
    return stats;
}

std::string
ServiceDaemon::statsJson() const
{
    return impl_->buildStatsJson();
}

std::string
ServiceDaemon::scrapeText() const
{
    return impl_->buildScrape();
}

std::string
ServiceDaemon::dumpFlightRecorder() const
{
    return impl_->dumpFlight();
}

} // namespace swcc::service
