/**
 * @file
 * Small blocking client for swccd, used by the load-generator bench,
 * the tests, and the `swcc service-query` convenience path.
 *
 * Supports pipelining: sendQuery() enqueues without waiting, and
 * recvResult() collects responses in request order, so a closed-loop
 * load generator can keep several requests in flight per connection.
 */

#ifndef SWCC_SERVICE_CLIENT_HH
#define SWCC_SERVICE_CLIENT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace swcc::service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** @throws std::runtime_error if the socket cannot be reached. */
    void connect(const std::string &socketPath);

    /**
     * Polls connect() until the daemon answers or @p timeout_ms
     * elapses; true on success. For "start daemon, wait ready" flows.
     */
    static bool waitForServer(const std::string &socketPath,
                              int timeout_ms);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Speak the JSON-lines dialect instead of binary frames. */
    void useJson(bool json) { json_ = json; }

    /** One blocking round trip. */
    QueryResult query(const Query &query);

    /** Pipelined send; pair each call with one recvResult(). */
    void sendQuery(const Query &query);

    /**
     * Next in-order query response.
     * @throws std::runtime_error on disconnect or framing violation.
     */
    QueryResult recvResult();

    /** The daemon's stats JSON document. */
    std::string stats();

    /** Round-trips a ping; returns the echo payload. */
    std::string ping();

    /**
     * The daemon's Prometheus text-exposition snapshot. In JSON mode
     * the response's "scrape" field is unwrapped, so both dialects
     * return the same multi-line exposition text.
     */
    std::string scrape();

    /** Writes raw bytes (protocol robustness tests). */
    void sendRaw(const void *data, std::size_t size);

    /** Low-level: next response frame of any kind. */
    ResponseFrame recvResponse();

    /**
     * True when recvResult() would make progress without blocking on
     * the first read: buffered bytes or socket readable within
     * @p timeout_ms. Open-loop load generators drain with this.
     */
    bool pollReadable(int timeout_ms);

  private:
    bool fillMore();

    int fd_ = -1;
    bool json_ = false;
    std::vector<std::uint8_t> inbuf_;
    std::size_t offset_ = 0;
};

} // namespace swcc::service

#endif // SWCC_SERVICE_CLIENT_HH
