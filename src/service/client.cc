#include "service/client.hh"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/obs/json.hh"

namespace swcc::service
{

namespace
{

int
connectOnce(const std::string &path)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::connect(const std::string &socketPath)
{
    close();
    fd_ = connectOnce(socketPath);
    if (fd_ < 0) {
        throw std::runtime_error("cannot connect to swccd at " +
                                 socketPath);
    }
}

bool
ServiceClient::waitForServer(const std::string &socketPath,
                             int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = connectOnce(socketPath);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    inbuf_.clear();
    offset_ = 0;
}

void
ServiceClient::sendRaw(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw std::runtime_error("swccd connection write failed");
        }
        sent += static_cast<std::size_t>(n);
    }
}

void
ServiceClient::sendQuery(const Query &query)
{
    if (json_) {
        std::string line = queryToJson(query);
        line += '\n';
        sendRaw(line.data(), line.size());
        return;
    }
    std::vector<std::uint8_t> out;
    appendQueryRequest(out, query);
    sendRaw(out.data(), out.size());
}

bool
ServiceClient::fillMore()
{
    std::uint8_t chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            inbuf_.insert(inbuf_.end(), chunk, chunk + n);
            return true;
        }
        if (n == 0) {
            return false;
        }
        if (errno == EINTR) {
            continue;
        }
        return false;
    }
}

bool
ServiceClient::pollReadable(int timeout_ms)
{
    if (offset_ < inbuf_.size()) {
        return true;
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    return ::poll(&pfd, 1, timeout_ms) > 0;
}

ResponseFrame
ServiceClient::recvResponse()
{
    for (;;) {
        ResponseFrame frame;
        std::string error;
        std::size_t consumed = 0;
        const DecodeStatus status =
            decodeResponse(inbuf_.data() + offset_,
                           inbuf_.size() - offset_, consumed, frame,
                           error);
        if (status == DecodeStatus::Frame) {
            offset_ += consumed;
            if (offset_ > 64 * 1024 || offset_ == inbuf_.size()) {
                inbuf_.erase(inbuf_.begin(),
                             inbuf_.begin() +
                                 static_cast<std::ptrdiff_t>(offset_));
                offset_ = 0;
            }
            return frame;
        }
        if (status == DecodeStatus::BadFrame) {
            throw std::runtime_error("swccd sent a malformed frame: " +
                                     error);
        }
        if (!fillMore()) {
            throw std::runtime_error(
                "swccd closed the connection mid-response");
        }
    }
}

QueryResult
ServiceClient::recvResult()
{
    const ResponseFrame frame = recvResponse();
    QueryResult result;
    result.domain = frame.domain;
    if (frame.isQueryResult && frame.status == ResponseStatus::Ok) {
        result.ok = true;
        result.bus = frame.bus;
        result.network = frame.network;
    } else {
        result.error = frame.text.empty()
            ? std::string("request failed")
            : frame.text;
    }
    return result;
}

QueryResult
ServiceClient::query(const Query &query)
{
    sendQuery(query);
    return recvResult();
}

std::string
ServiceClient::stats()
{
    if (json_) {
        const std::string line = "{\"cmd\":\"stats\"}\n";
        sendRaw(line.data(), line.size());
    } else {
        std::vector<std::uint8_t> out;
        appendControlRequest(out, RequestKind::Stats);
        sendRaw(out.data(), out.size());
    }
    return recvResponse().text;
}

std::string
ServiceClient::ping()
{
    if (json_) {
        const std::string line = "{\"cmd\":\"ping\"}\n";
        sendRaw(line.data(), line.size());
    } else {
        std::vector<std::uint8_t> out;
        appendControlRequest(out, RequestKind::Ping);
        sendRaw(out.data(), out.size());
    }
    return recvResponse().text;
}

std::string
ServiceClient::scrape()
{
    if (json_) {
        const std::string line = "{\"cmd\":\"scrape\"}\n";
        sendRaw(line.data(), line.size());
    } else {
        std::vector<std::uint8_t> out;
        appendControlRequest(out, RequestKind::Scrape);
        sendRaw(out.data(), out.size());
    }
    const std::string text = recvResponse().text;
    if (!json_) {
        return text;
    }
    const obs::JsonValue doc = obs::parseJson(text);
    if (!doc.isObject()) {
        throw std::runtime_error(
            "malformed scrape response: not a JSON object");
    }
    const obs::JsonValue *field = doc.find("scrape");
    if (field == nullptr || !field->isString()) {
        throw std::runtime_error(
            "scrape response missing \"scrape\" field");
    }
    return field->string;
}

} // namespace swcc::service
