#include "service/service_kernel.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <exception>
#include <unordered_map>
#include <vector>

#include "core/obs/metrics.hh"
#include "core/obs/trace.hh"
#include "core/scheme_evaluator.hh"
#include "core/solver_cache.hh"

namespace swcc::service
{

namespace
{

/** Field names checked before params.validate() (finite-ness). */
const char *
paramFieldName(std::size_t index)
{
    switch (index) {
      case 0: return "ls";
      case 1: return "msdat";
      case 2: return "mains";
      case 3: return "md";
      case 4: return "shd";
      case 5: return "wr";
      case 6: return "apl";
      case 7: return "mdshd";
      case 8: return "oclean";
      case 9: return "opres";
      case 10: return "nshd";
    }
    return "?";
}

double
paramFieldValue(const WorkloadParams &params, std::size_t index)
{
    switch (index) {
      case 0: return params.ls;
      case 1: return params.msdat;
      case 2: return params.mains;
      case 3: return params.md;
      case 4: return params.shd;
      case 5: return params.wr;
      case 6: return params.apl;
      case 7: return params.mdshd;
      case 8: return params.oclean;
      case 9: return params.opres;
      case 10: return params.nshd;
    }
    return 0.0;
}

/** Canonical key of a query's coalescible part (domain+scheme+params). */
SolverCacheKey
groupKey(const Query &query)
{
    return SolverKeyBuilder("service-group")
        .add(std::uint64_t{static_cast<std::uint8_t>(query.domain)})
        .add(schemeName(query.scheme))
        .add(query.params)
        .key();
}

#if SWCC_OBS_ENABLED
obs::Counter &
queriesCounter()
{
    static obs::Counter &counter =
        obs::metrics().counter("service.kernel.queries");
    return counter;
}

obs::Counter &
groupsCounter()
{
    static obs::Counter &counter =
        obs::metrics().counter("service.kernel.groups");
    return counter;
}

obs::Counter &
coalescedCounter()
{
    static obs::Counter &counter =
        obs::metrics().counter("service.kernel.coalesced");
    return counter;
}
#endif

} // namespace

std::string_view
domainName(QueryDomain domain)
{
    return domain == QueryDomain::Bus ? "bus" : "network";
}

ServiceKernel::ServiceKernel() : ServiceKernel(Limits{}) {}

ServiceKernel::ServiceKernel(Limits limits) : limits_(limits) {}

std::string
ServiceKernel::validate(const Query &query) const
{
    if (query.domain != QueryDomain::Bus &&
        query.domain != QueryDomain::Network) {
        return "unknown query domain";
    }
    switch (query.scheme) {
      case Scheme::Base:
      case Scheme::NoCache:
      case Scheme::SoftwareFlush:
      case Scheme::Dragon:
      case Scheme::Mesi:
      case Scheme::Mesif:
      case Scheme::Moesi:
      case Scheme::Hybrid:
        break;
      default:
        return "unknown scheme";
    }
    for (std::size_t i = 0; i < kNumParams; ++i) {
        const double value = paramFieldValue(query.params, i);
        if (!std::isfinite(value)) {
            return std::string("workload parameter ") +
                paramFieldName(i) + " must be finite";
        }
    }
    try {
        query.params.validate();
    } catch (const std::exception &e) {
        return e.what();
    }
    if (query.size == 0) {
        return "machine size must be at least 1";
    }
    if (query.domain == QueryDomain::Bus) {
        if (query.size > limits_.maxBusProcessors) {
            return "bus processor count exceeds limit (" +
                std::to_string(limits_.maxBusProcessors) + ")";
        }
    } else {
        if (query.size > limits_.maxNetworkStages) {
            return "network stage count exceeds limit (" +
                std::to_string(limits_.maxNetworkStages) + ")";
        }
        if (!schemeWorksOnNetwork(query.scheme)) {
            return "snoopy schemes need a broadcast bus; they cannot "
                   "run on a multistage network";
        }
    }
    return {};
}

QueryResult
ServiceKernel::evaluate(const Query &query) const
{
    QueryResult result;
    result.domain = query.domain;
    result.error = validate(query);
    if (!result.error.empty()) {
        return result;
    }
#if SWCC_OBS_ENABLED
    queriesCounter().add();
#endif
    try {
        if (query.domain == QueryDomain::Bus) {
            result.bus =
                evaluateBus(query.scheme, query.params, query.size);
        } else {
            result.network = evaluateNetwork(query.scheme, query.params,
                                             query.size);
        }
        result.ok = true;
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    return result;
}

void
ServiceKernel::evaluateBatch(const Query *queries, std::size_t count,
                             QueryResult *results) const
{
#if SWCC_OBS_ENABLED
    static const std::uint32_t span =
        obs::tracer().intern("service.batch");
    obs::ScopedSpan scoped(span);
#endif
    // Reject inadmissible queries and bucket the rest by their
    // coalescible identity (domain, scheme, workload).
    std::unordered_map<SolverCacheKey, std::vector<std::size_t>,
                       SolverCacheKeyHash>
        groups;
    groups.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        results[i] = QueryResult{};
        results[i].domain = queries[i].domain;
        results[i].error = validate(queries[i]);
        if (results[i].error.empty()) {
            groups[groupKey(queries[i])].push_back(i);
        }
    }

    for (const auto &[key, members] : groups) {
        (void)key;
        const Query &head = queries[members.front()];
#if SWCC_OBS_ENABLED
        queriesCounter().add(members.size());
        groupsCounter().add();
#endif
        unsigned max_size = 0;
        unsigned min_size = ~0u;
        for (const std::size_t i : members) {
            max_size = std::max(max_size, queries[i].size);
            min_size = std::min(min_size, queries[i].size);
        }
        // With the memo on, canonicalize the curve length to the next
        // power of two (clamped to the admission limit) so successive
        // batches of the same workload hit the curve memo instead of
        // re-solving a fresh curve per distinct batch maximum. Safe:
        // curve element i is bitwise identical to the point solve of
        // size i+1 whatever the curve length.
        unsigned solve_size = max_size;
        if (solverCacheEnabled() && members.size() > 1 &&
            max_size != min_size) {
            const unsigned limit = head.domain == QueryDomain::Bus
                ? limits_.maxBusProcessors
                : limits_.maxNetworkStages;
            solve_size = std::max(
                max_size, std::min(std::bit_ceil(max_size), limit));
        }
        try {
            if (members.size() == 1 || max_size == min_size) {
                // Nothing to coalesce: one point solve answers all
                // (duplicates share it).
                if (head.domain == QueryDomain::Bus) {
                    const BusSolution sol = evaluateBus(
                        head.scheme, head.params, head.size);
                    for (const std::size_t i : members) {
                        results[i].bus = sol;
                        results[i].ok = true;
                    }
                } else {
                    const NetworkSolution sol = evaluateNetwork(
                        head.scheme, head.params, head.size);
                    for (const std::size_t i : members) {
                        results[i].network = sol;
                        results[i].ok = true;
                    }
                }
                continue;
            }
            // Distinct sizes of one workload: one batched curve solve
            // answers every member bitwise identically to its point
            // solve (and seeds the point memo for future queries).
            if (head.domain == QueryDomain::Bus) {
                const std::vector<BusSolution> curve = evaluateBusCurve(
                    head.scheme, head.params, solve_size);
                for (const std::size_t i : members) {
                    results[i].bus = curve[queries[i].size - 1];
                    results[i].ok = true;
                }
            } else {
                const std::vector<NetworkSolution> curve =
                    evaluateNetworkCurve(head.scheme, head.params,
                                         solve_size);
                for (const std::size_t i : members) {
                    results[i].network = curve[queries[i].size - 1];
                    results[i].ok = true;
                }
            }
#if SWCC_OBS_ENABLED
            coalescedCounter().add(members.size());
#endif
        } catch (const std::exception &e) {
            for (const std::size_t i : members) {
                results[i].ok = false;
                results[i].error = e.what();
            }
        }
    }
}

} // namespace swcc::service
