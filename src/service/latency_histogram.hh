/**
 * @file
 * HdrHistogram-style log-linear latency histogram.
 *
 * Values (nanoseconds) are bucketed by a log2 group with 64 linear
 * sub-buckets per group, bounding the relative quantization error at
 * ~1.6% while covering the full 64-bit range in a fixed 1.9k-bucket
 * array. Recording is two shifts and an increment — cheap enough to
 * call per request on the load-generator's hot path.
 *
 * A histogram instance is single-writer (each loadgen thread owns
 * one); merge() combines per-thread histograms after a run for the
 * aggregate quantiles.
 */

#ifndef SWCC_SERVICE_LATENCY_HISTOGRAM_HH
#define SWCC_SERVICE_LATENCY_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swcc::service
{

class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Records one latency observation in nanoseconds. */
    void record(std::uint64_t nanos);

    /** Adds every observation of @p other into this histogram. */
    void merge(const LatencyHistogram &other);

    /** Total observations recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded values (nanoseconds). */
    std::uint64_t sum() const { return sum_; }

    /** Mean recorded value, 0 when empty. */
    double mean() const;

    /** Largest / smallest recorded value (bucket-exact), 0 if empty. */
    std::uint64_t maxValue() const { return max_; }
    std::uint64_t minValue() const { return count_ == 0 ? 0 : min_; }

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * containing the ceil(q * count)-th observation (nanoseconds).
     * Returns 0 when empty.
     */
    std::uint64_t valueAtQuantile(double q) const;

    /** Upper bound (inclusive) of bucket @p index, in nanoseconds. */
    static std::uint64_t bucketUpperBound(std::size_t index);

    /** Raw bucket counts (for CSV export of the full distribution). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    static std::size_t bucketIndex(std::uint64_t value);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = 0;
};

} // namespace swcc::service

#endif // SWCC_SERVICE_LATENCY_HISTOGRAM_HH
