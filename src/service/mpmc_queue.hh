/**
 * @file
 * Bounded lock-free MPMC ring (Vyukov-style sequence counters).
 *
 * The daemon's submission path: connection threads (producers) push
 * decoded queries, batching workers (consumers) pop them in groups.
 * Same discipline as the journal's CommitQueue — each slot carries a
 * sequence counter that tells producers and consumers whose turn the
 * slot is, so an enqueue or dequeue is one CAS on the head/tail plus
 * two relaxed/acquire-release accesses on the slot, with no mutex on
 * the hot path. Capacity must be a power of two.
 */

#ifndef SWCC_SERVICE_MPMC_QUEUE_HH
#define SWCC_SERVICE_MPMC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace swcc::service
{

template <typename T>
class MpmcQueue
{
  public:
    explicit MpmcQueue(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1)
    {
        static_assert(std::is_nothrow_move_assignable_v<T> ||
                          std::is_copy_assignable_v<T>,
                      "slot assignment must not throw mid-transfer");
        for (std::size_t i = 0; i < capacity; ++i) {
            slots_[i].sequence.store(i, std::memory_order_relaxed);
        }
    }

    /** Non-blocking enqueue; false when the ring is full. */
    bool
    tryPush(T value)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::size_t seq =
                slot.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t diff =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos);
            if (diff == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = std::move(value);
                    slot.sequence.store(pos + 1,
                                        std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Full: slot not yet consumed.
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Non-blocking dequeue; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::size_t seq =
                slot.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t diff =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos + 1);
            if (diff == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    out = std::move(slot.value);
                    slot.sequence.store(pos + mask_ + 1,
                                        std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Empty: slot not yet produced.
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

  private:
    struct Slot
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::vector<Slot> slots_;
    std::size_t mask_;
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> head_{0};
};

} // namespace swcc::service

#endif // SWCC_SERVICE_MPMC_QUEUE_HH
