#include "service/flight_recorder.hh"

#include <algorithm>

#include "core/obs/json.hh"
#include "core/types.hh"

namespace swcc::service
{

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 16))
{
}

void
FlightRecorder::record(const FlightRecord &record)
{
    const std::uint64_t n =
        next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[n % slots_.size()];

    // Odd sequence marks the slot inconsistent while fields land.
    const std::uint64_t seq =
        slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq | 1, std::memory_order_release);

    slot.traceId.store(record.traceId, std::memory_order_relaxed);
    slot.decodeNs.store(record.decodeNs, std::memory_order_relaxed);
    slot.queueWaitNs.store(record.queueWaitNs,
                           std::memory_order_relaxed);
    slot.solveNs.store(record.solveNs, std::memory_order_relaxed);
    slot.totalNs.store(record.totalNs, std::memory_order_relaxed);
    slot.batchSize.store(record.batchSize, std::memory_order_relaxed);
    slot.size.store(record.size, std::memory_order_relaxed);
    slot.domain.store(static_cast<std::uint8_t>(record.domain),
                      std::memory_order_relaxed);
    slot.scheme.store(static_cast<std::uint8_t>(record.scheme),
                      std::memory_order_relaxed);
    slot.ok.store(record.ok ? 1 : 0, std::memory_order_relaxed);

    slot.seq.store((seq | 1) + 1, std::memory_order_release);
}

std::uint64_t
FlightRecorder::totalRecorded() const
{
    return next_.load(std::memory_order_relaxed);
}

std::vector<FlightRecord>
FlightRecorder::snapshot() const
{
    const std::uint64_t total =
        next_.load(std::memory_order_acquire);
    const std::size_t cap = slots_.size();
    const std::uint64_t first = total > cap ? total - cap : 0;

    std::vector<FlightRecord> out;
    out.reserve(std::min<std::uint64_t>(total, cap));
    for (std::uint64_t i = first; i < total; ++i) {
        const Slot &slot = slots_[i % cap];
        const std::uint64_t before =
            slot.seq.load(std::memory_order_acquire);
        if (before % 2 != 0) {
            continue; // Mid-write.
        }
        FlightRecord record;
        record.traceId =
            slot.traceId.load(std::memory_order_relaxed);
        record.decodeNs =
            slot.decodeNs.load(std::memory_order_relaxed);
        record.queueWaitNs =
            slot.queueWaitNs.load(std::memory_order_relaxed);
        record.solveNs = slot.solveNs.load(std::memory_order_relaxed);
        record.totalNs = slot.totalNs.load(std::memory_order_relaxed);
        record.batchSize =
            slot.batchSize.load(std::memory_order_relaxed);
        record.size = slot.size.load(std::memory_order_relaxed);
        record.domain = static_cast<QueryDomain>(
            slot.domain.load(std::memory_order_relaxed));
        record.scheme = static_cast<Scheme>(
            slot.scheme.load(std::memory_order_relaxed));
        record.ok = slot.ok.load(std::memory_order_relaxed) != 0;
        // Zero-delta RMW: its release half keeps the field loads
        // above from sinking past the recheck (a fence would do the
        // same but is unsupported under -fsanitize=thread).
        if (slot.seq.fetch_add(0, std::memory_order_acq_rel) !=
            before) {
            continue; // Overwritten while we read.
        }
        out.push_back(record);
    }
    return out;
}

std::string
FlightRecorder::toJson() const
{
    const std::vector<FlightRecord> records = snapshot();
    std::string out = "{\"flight_recorder\":{\"capacity\":" +
        std::to_string(slots_.size()) +
        ",\"total_recorded\":" + std::to_string(totalRecorded()) +
        ",\"records\":[";
    bool first = true;
    for (const FlightRecord &record : records) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"trace_id\":" + std::to_string(record.traceId) +
            ",\"decode_ns\":" + std::to_string(record.decodeNs) +
            ",\"queue_wait_ns\":" +
            std::to_string(record.queueWaitNs) +
            ",\"solve_ns\":" + std::to_string(record.solveNs) +
            ",\"total_ns\":" + std::to_string(record.totalNs) +
            ",\"batch_size\":" + std::to_string(record.batchSize) +
            ",\"size\":" + std::to_string(record.size) +
            ",\"domain\":\"" +
            std::string(domainName(record.domain)) +
            "\",\"scheme\":\"" +
            obs::jsonEscape(std::string(schemeName(record.scheme))) +
            "\",\"ok\":" + (record.ok ? "true" : "false") + '}';
    }
    out += "]}}\n";
    return out;
}

} // namespace swcc::service
