/**
 * @file
 * swccd wire protocol: compact length-prefixed binary frames with a
 * JSON-lines fallback, sniffed per request by the first byte.
 *
 * Binary framing (all integers little-endian):
 *
 *   request  := 0xC5 version:u8 kind:u8 reserved:u8 len:u32 payload
 *   response := 0xC6 version:u8 status:u8 flags:u8 len:u32 payload
 *
 *   query payload (kind=Query, 96 bytes):
 *     domain:u8 scheme:u8 reserved:u16 size:u32 params:11 x f64
 *   ok-bus payload:     domain:u8 pad:u8x3 processors:u32 + 7 x f64
 *   ok-network payload: domain:u8 pad:u8x3 stages:u32 processors:u32
 *                       pad:u32 + 11 x f64
 *   error payload:      UTF-8 message
 *   stats payload:      UTF-8 JSON document
 *
 * Doubles travel as raw IEEE-754 bit patterns, so a binary response
 * is bitwise identical to the in-process solver output. The JSON
 * fallback (a request line starting with '{', answered by one JSON
 * line) formats doubles with shortest round-trip precision
 * (std::to_chars), so parsing a JSON response also reproduces the
 * exact bits.
 *
 * Robustness contract: decodeRequest() never reads past the supplied
 * buffer, never allocates proportionally to attacker-controlled
 * lengths, and classifies every malformed input as either a
 * recoverable field error (framing intact — the server answers with
 * an error response and keeps the connection) or a framing error
 * (bad magic/version, oversized length prefix, over-long JSON line —
 * the server answers once and closes the connection).
 */

#ifndef SWCC_SERVICE_PROTOCOL_HH
#define SWCC_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/service_kernel.hh"
#include "service/trace_context.hh"

namespace swcc::service
{

inline constexpr std::uint8_t kRequestMagic = 0xC5;
inline constexpr std::uint8_t kResponseMagic = 0xC6;
inline constexpr std::uint8_t kProtocolVersion = 1;

/** Frame header size (magic, version, kind/status, flag, u32 len). */
inline constexpr std::size_t kFrameHeader = 8;

/** Hard ceilings a peer cannot talk us past. */
inline constexpr std::uint32_t kMaxRequestPayload = 4096;
inline constexpr std::uint32_t kMaxResponsePayload = 1u << 20;
inline constexpr std::size_t kMaxJsonLine = 8192;

enum class RequestKind : std::uint8_t
{
    Query = 0,
    Stats = 1,
    Ping = 2,
    /** Prometheus text-exposition snapshot of the live daemon. */
    Scrape = 3,
};

enum class ResponseStatus : std::uint8_t
{
    Ok = 0,
    BadRequest = 1,
    ServerError = 2,
};

/** One decoded request, plus how to answer it. */
struct RequestFrame
{
    RequestKind kind = RequestKind::Query;
    Query query;
    /** Respond in JSON (the request arrived as a JSON line). */
    bool json = false;
    /** Non-empty: framing was intact but a field is invalid. */
    std::string fieldError;
    /** Minted by the server at decode; rides to the worker. */
    TraceContext trace;
};

/** One decoded response (client side). */
struct ResponseFrame
{
    ResponseStatus status = ResponseStatus::Ok;
    /** Error message / stats or ping payload for non-query frames. */
    std::string text;
    bool isQueryResult = false;
    QueryDomain domain = QueryDomain::Bus;
    BusSolution bus;
    NetworkSolution network;
};

enum class DecodeStatus
{
    /** Buffer holds no complete frame yet; read more. */
    NeedMore,
    /** One frame decoded; @c consumed bytes were used. */
    Frame,
    /** Unrecoverable framing violation; close the connection. */
    BadFrame,
};

/** Appends a binary query request frame (client side). */
void appendQueryRequest(std::vector<std::uint8_t> &out,
                        const Query &query);

/** Appends a binary stats/ping request frame (client side). */
void appendControlRequest(std::vector<std::uint8_t> &out,
                          RequestKind kind);

/**
 * Appends the response to a successful or failed query, binary or
 * JSON according to @p json.
 */
void appendQueryResponse(std::vector<std::uint8_t> &out,
                         const QueryResult &result, bool json);

/** Appends a text response (stats JSON, ping echo, error). */
void appendTextResponse(std::vector<std::uint8_t> &out,
                        ResponseStatus status, std::string_view text,
                        bool json);

/**
 * Attempts to decode one request (binary or JSON line) from the front
 * of @p data. On Frame, @p consumed is the number of bytes to drop
 * and @p frame holds the request (check frame.fieldError). On
 * BadFrame, @p error describes the violation.
 */
DecodeStatus decodeRequest(const std::uint8_t *data, std::size_t size,
                           std::size_t &consumed, RequestFrame &frame,
                           std::string &error);

/**
 * Attempts to decode one binary or JSON response from the front of
 * @p data (client side; benches and tests).
 */
DecodeStatus decodeResponse(const std::uint8_t *data, std::size_t size,
                            std::size_t &consumed, ResponseFrame &frame,
                            std::string &error);

/** Shortest round-trip decimal form of @p value (std::to_chars). */
std::string formatDouble(double value);

/** Serializes a query as one JSON request line (without newline). */
std::string queryToJson(const Query &query);

} // namespace swcc::service

#endif // SWCC_SERVICE_PROTOCOL_HH
