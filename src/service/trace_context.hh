/**
 * @file
 * Request-scoped trace context for the swccd telemetry plane.
 *
 * A TraceContext is minted on the connection thread when a request is
 * decoded and rides with the query through the protocol structs, the
 * MPMC submission queue, and the batching worker. The trace id keys
 * every cross-thread correlation for that request: flow arrows and
 * async queue intervals in the Chrome/Perfetto trace, the slow-query
 * log line, and the flight-recorder slot.
 */

#ifndef SWCC_SERVICE_TRACE_CONTEXT_HH
#define SWCC_SERVICE_TRACE_CONTEXT_HH

#include <cstdint>

namespace swcc::service
{

struct TraceContext
{
    /** Process-unique request id; 0 means "not traced". */
    std::uint64_t traceId = 0;
    /** Span ordinal within the request (decode=1, queue=2, ...). */
    std::uint64_t spanId = 0;

    bool valid() const { return traceId != 0; }
};

} // namespace swcc::service

#endif // SWCC_SERVICE_TRACE_CONTEXT_HH
