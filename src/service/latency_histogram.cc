#include "service/latency_histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace swcc::service
{

namespace
{

/** log2 of the linear sub-bucket count per group. */
constexpr std::uint64_t kSubBits = 6;
constexpr std::uint64_t kSub = 1ull << kSubBits; // 64
constexpr std::uint64_t kHalf = kSub / 2;        // 32

/** Groups above the linear range: one per dropped low bit. */
constexpr std::size_t kGroups = 64 - kSubBits;
constexpr std::size_t kBuckets =
    static_cast<std::size_t>(kSub + kGroups * kHalf);

} // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSub) {
        return static_cast<std::size_t>(value);
    }
    // Drop low bits until the value fits in kSubBits bits; the kept
    // prefix lands in [kHalf, kSub).
    const std::uint64_t shift =
        static_cast<std::uint64_t>(std::bit_width(value)) - kSubBits;
    const std::uint64_t sub = value >> shift;
    return static_cast<std::size_t>(kSub + (shift - 1) * kHalf +
                                    (sub - kHalf));
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::size_t index)
{
    if (index < kSub) {
        return index;
    }
    const std::uint64_t offset = index - kSub;
    const std::uint64_t shift = offset / kHalf + 1;
    const std::uint64_t sub = kHalf + offset % kHalf;
    return ((sub + 1) << shift) - 1;
}

void
LatencyHistogram::record(std::uint64_t nanos)
{
    ++buckets_[bucketIndex(nanos)];
    ++count_;
    sum_ += nanos;
    max_ = std::max(max_, nanos);
    min_ = count_ == 1 ? nanos : std::min(min_, nanos);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    if (other.count_ > 0) {
        min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
LatencyHistogram::mean() const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
LatencyHistogram::valueAtQuantile(double q) const
{
    if (count_ == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            return bucketUpperBound(i);
        }
    }
    return max_;
}

} // namespace swcc::service
