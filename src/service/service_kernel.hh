/**
 * @file
 * ServiceKernel: the stateless, thread-safe query facade shared by the
 * CLI, the benches, and the swccd daemon.
 *
 * A query names an analytical operating point — (domain, scheme,
 * workload parameters, machine size) — and the kernel answers it with
 * the corresponding BusSolution or NetworkSolution, exactly as the
 * single-query evaluateBus()/evaluateNetwork() entry points would.
 *
 * The batch path is the daemon's amortization lever: evaluateBatch()
 * groups the in-flight queries that share (domain, scheme, workload)
 * and answers each group whose members ask for different machine
 * sizes with ONE evaluateBusCurve()/evaluateNetworkCurve() call — the
 * batched solver kernels (O(N) prefix MVA, SIMD bisection sweep)
 * compute every size of the group in one pass, so the marginal query
 * costs one extra lane instead of one extra solve. Curve element i is
 * bitwise identical to the single-point solve by the solver-layer
 * contract, so batching never changes a result; duplicate queries
 * within a group are answered from the same solve. All paths share
 * the process-wide solver memo cache across clients.
 *
 * The kernel holds no mutable state (limits only), so one instance
 * serves any number of threads concurrently.
 */

#ifndef SWCC_SERVICE_SERVICE_KERNEL_HH
#define SWCC_SERVICE_SERVICE_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/bus_model.hh"
#include "core/network_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc::service
{

/** Which contention model a query addresses. */
enum class QueryDomain : std::uint8_t
{
    Bus = 0,
    Network = 1,
};

/** Name of a domain ("bus"/"network"). */
std::string_view domainName(QueryDomain domain);

/** One analytical what-if query. */
struct Query
{
    QueryDomain domain = QueryDomain::Bus;
    Scheme scheme = Scheme::Base;
    /** Processors (bus) or switch stages (network). */
    unsigned size = 1;
    WorkloadParams params;
};

/** Answer to one Query; exactly one of bus/network is meaningful. */
struct QueryResult
{
    bool ok = false;
    /** Human-readable reason when !ok. */
    std::string error;
    QueryDomain domain = QueryDomain::Bus;
    BusSolution bus;
    NetworkSolution network;
};

class ServiceKernel
{
  public:
    /**
     * Admission bounds on machine size: a query past these is rejected
     * up front rather than allowed to monopolize a worker (a curve
     * solve is O(size), so unvalidated sizes would be a cheap DoS).
     */
    struct Limits
    {
        unsigned maxBusProcessors = 1024;
        unsigned maxNetworkStages = 24;
    };

    ServiceKernel();
    explicit ServiceKernel(Limits limits);

    const Limits &limits() const { return limits_; }

    /**
     * Validates @p query against the parameter domains and the size
     * limits. Returns an empty string when admissible, else the
     * reason (non-finite or out-of-range parameter, zero/oversized
     * machine, scheme/domain mismatch).
     */
    std::string validate(const Query &query) const;

    /**
     * Answers one query. Invalid or unsolvable queries return
     * ok=false with the reason; no exception escapes.
     */
    QueryResult evaluate(const Query &query) const;

    /**
     * Answers @p count queries, coalescing same-workload groups into
     * batched curve solves (see file comment). results[i] corresponds
     * to queries[i] and is bitwise identical to evaluate(queries[i]).
     */
    void evaluateBatch(const Query *queries, std::size_t count,
                       QueryResult *results) const;

  private:
    Limits limits_;
};

} // namespace swcc::service

#endif // SWCC_SERVICE_SERVICE_KERNEL_HH
