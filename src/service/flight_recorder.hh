/**
 * @file
 * Flight recorder: a bounded lock-free ring of the last N completed
 * request summaries.
 *
 * Workers record one fixed-size summary per completed query; a slot
 * index comes from a single fetch_add, so recording never blocks and
 * never allocates. Each slot is guarded by a per-slot sequence
 * counter (seqlock discipline, but with every field individually
 * atomic so concurrent read/write stays data-race-free under TSan):
 * a writer bumps the sequence to odd, stores the fields, then bumps
 * it to the next even value. snapshot() re-checks the sequence after
 * reading and simply skips slots caught mid-write — a dump taken
 * while the daemon is under load loses at most the records being
 * overwritten at that instant.
 *
 * The recorder is always on (plain atomics, ~100 bytes/slot, no
 * obs dependency) so a SWCC_OBS=OFF daemon still yields a usable
 * post-mortem dump on SIGUSR1 or worker death.
 */

#ifndef SWCC_SERVICE_FLIGHT_RECORDER_HH
#define SWCC_SERVICE_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/service_kernel.hh"

namespace swcc::service
{

/** One completed-request summary (the readable snapshot form). */
struct FlightRecord
{
    std::uint64_t traceId = 0;
    /** Nanoseconds since daemon start when the query was decoded. */
    std::uint64_t decodeNs = 0;
    /** Time spent in the submission queue (ns). */
    std::uint64_t queueWaitNs = 0;
    /** Share of the batch's solver call (ns, whole-batch time). */
    std::uint64_t solveNs = 0;
    /** Decode-to-completion latency (ns). */
    std::uint64_t totalNs = 0;
    std::uint32_t batchSize = 0;
    std::uint32_t size = 0;
    QueryDomain domain = QueryDomain::Bus;
    Scheme scheme = Scheme::Base;
    bool ok = false;
};

class FlightRecorder
{
  public:
    /** @p capacity slots, rounded up to at least 16. */
    explicit FlightRecorder(std::size_t capacity);

    /** Records one summary; lock-free, wait-free but for fetch_add. */
    void record(const FlightRecord &record);

    /** Total records ever written (>= capacity means wrapped). */
    std::uint64_t totalRecorded() const;

    std::size_t capacity() const { return slots_.size(); }

    /**
     * Copies out every consistent slot, oldest first. Slots being
     * overwritten concurrently are skipped.
     */
    std::vector<FlightRecord> snapshot() const;

    /** Renders a snapshot as a JSON document (one object). */
    std::string toJson() const;

  private:
    struct Slot
    {
        /**
         * Even = consistent generation; odd = write in progress.
         * Mutable: const snapshot() rechecks it with a zero-delta
         * fetch_add (an acq_rel RMW orders the preceding field loads
         * without a thread fence, which TSan cannot instrument).
         */
        mutable std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> traceId{0};
        std::atomic<std::uint64_t> decodeNs{0};
        std::atomic<std::uint64_t> queueWaitNs{0};
        std::atomic<std::uint64_t> solveNs{0};
        std::atomic<std::uint64_t> totalNs{0};
        std::atomic<std::uint32_t> batchSize{0};
        std::atomic<std::uint32_t> size{0};
        std::atomic<std::uint8_t> domain{0};
        std::atomic<std::uint8_t> scheme{0};
        std::atomic<std::uint8_t> ok{0};
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> next_{0};
};

} // namespace swcc::service

#endif // SWCC_SERVICE_FLIGHT_RECORDER_HH
