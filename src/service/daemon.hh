/**
 * @file
 * swccd: the model-as-a-service daemon.
 *
 * Architecture (see DESIGN §10):
 *
 *   acceptor thread ──► connection threads (one per client)
 *        │                   │  decode + validate frames
 *        │                   ▼
 *        │            lock-free MPMC submission queue
 *        │                   │
 *        │                   ▼
 *        │            batching workers (config.workers threads):
 *        │              pop up to config.batchMax submissions,
 *        │              ServiceKernel::evaluateBatch() coalesces
 *        │              same-workload queries into one batched
 *        │              curve solve, complete each slot
 *        │                   │
 *        └───────────────────▼
 *              connection thread flushes completed responses
 *              in request order with one writev() per burst
 *
 * Responses to one connection are delivered strictly in request
 * order. A batch forms naturally from whatever is in flight when a
 * worker polls the queue — there is no artificial batching delay, so
 * an idle daemon answers a lone query at point-solve latency while a
 * loaded daemon amortizes whole batches into single kernel calls and
 * single writev() bursts.
 *
 * Graceful drain: requestStop() (async-signal-safe) stops the
 * acceptor, lets every connection finish decoding what has already
 * arrived, waits for the workers to answer all of it, flushes, and
 * only then tears threads down — an accepted request is always
 * answered. Malformed input never wedges a worker: frames are fully
 * validated on the connection thread and answered there with an
 * error response (recoverable field errors keep the connection;
 * framing violations close it after the error is sent).
 */

#ifndef SWCC_SERVICE_DAEMON_HH
#define SWCC_SERVICE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "service/service_kernel.hh"

namespace swcc::service
{

struct DaemonConfig
{
    /** Filesystem path of the unix-domain listening socket. */
    std::string socketPath;
    /** Batching worker threads. */
    unsigned workers = 4;
    /** Max submissions coalesced into one kernel batch (>= 1). */
    unsigned batchMax = 64;
    /** Admission limits forwarded to the ServiceKernel. */
    ServiceKernel::Limits limits;
    /** Concurrent connections admitted; extras are refused. */
    unsigned maxConnections = 1024;
    /**
     * Queries whose decode-to-completion latency reaches this many
     * microseconds are logged as structured JSON lines through the
     * leveled logger (warn level). 0 disables the slow-query log.
     */
    std::uint64_t slowQueryUs = 0;
    /** Completed-request summaries kept by the flight recorder. */
    std::size_t flightRecords = 1024;
    /**
     * Flight-recorder dump destination for dumpFlightRecorder();
     * empty means "<socketPath>.flight.json".
     */
    std::string flightRecorderPath;
};

/** Monotonic daemon-wide totals (also mirrored as service.* metrics). */
struct DaemonStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsRefused = 0;
    std::uint64_t queries = 0;
    std::uint64_t batches = 0;
    std::uint64_t validationErrors = 0;
    std::uint64_t protocolErrors = 0;
};

class ServiceDaemon
{
  public:
    explicit ServiceDaemon(DaemonConfig config);

    /** Joins all threads; equivalent to stop() if still running. */
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /**
     * Binds the socket (replacing a stale file at the path), spawns
     * the acceptor and worker threads, and returns once the daemon
     * accepts connections.
     *
     * @throws std::runtime_error if the socket cannot be bound.
     */
    void start();

    /**
     * Triggers a graceful drain without blocking. Safe to call from
     * a signal handler (one write() on an internal pipe).
     */
    void requestStop();

    /** Full graceful shutdown: requestStop(), drain, join, unlink. */
    void stop();

    bool running() const;

    const DaemonConfig &config() const;

    DaemonStats stats() const;

    /** The stats document served by the protocol's Stats request. */
    std::string statsJson() const;

    /**
     * The Prometheus text-exposition document served by the
     * protocol's Scrape request: always-on daemon/solver-cache
     * atomics, point-in-time gauges (queue depth, in-flight, active
     * connections), merged per-worker latency histograms, and — when
     * compiled in — the process metrics registry.
     */
    std::string scrapeText() const;

    /**
     * Writes the flight-recorder snapshot (last N completed-request
     * summaries) as JSON via atomicWriteFile and returns the path
     * written (config().flightRecorderPath, defaulting to
     * "<socketPath>.flight.json").
     *
     * @throws std::runtime_error if the file cannot be written.
     */
    std::string dumpFlightRecorder() const;

    /** @internal Implementation state (public for daemon.cc only). */
    struct Impl;

  private:
    std::unique_ptr<Impl> impl_;
};

} // namespace swcc::service

#endif // SWCC_SERVICE_DAEMON_HH
