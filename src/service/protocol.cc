#include "service/protocol.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "core/obs/json.hh"

namespace swcc::service
{

namespace
{

constexpr std::size_t kQueryPayload = 96;

/** Payload type carried in a response header's flags byte. */
enum class PayloadType : std::uint8_t
{
    Text = 0,
    BusResult = 1,
    NetworkResult = 2,
};

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t value)
{
    out.push_back(static_cast<std::uint8_t>(value & 0xff));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(value >> shift) & 0xff);
    }
}

void
putF64(std::vector<std::uint8_t> &out, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(bits >> shift) & 0xff);
    }
}

std::uint32_t
getU32(const std::uint8_t *data)
{
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
        value = (value << 8) | data[i];
    }
    return value;
}

double
getF64(const std::uint8_t *data)
{
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) {
        bits = (bits << 8) | data[i];
    }
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

void
putHeader(std::vector<std::uint8_t> &out, std::uint8_t magic,
          std::uint8_t kind_or_status, std::uint8_t flags,
          std::uint32_t payload_len)
{
    out.push_back(magic);
    out.push_back(kProtocolVersion);
    out.push_back(kind_or_status);
    out.push_back(flags);
    putU32(out, payload_len);
}

void
putParams(std::vector<std::uint8_t> &out, const WorkloadParams &p)
{
    putF64(out, p.ls);
    putF64(out, p.msdat);
    putF64(out, p.mains);
    putF64(out, p.md);
    putF64(out, p.shd);
    putF64(out, p.wr);
    putF64(out, p.apl);
    putF64(out, p.mdshd);
    putF64(out, p.oclean);
    putF64(out, p.opres);
    putF64(out, p.nshd);
}

void
getParams(const std::uint8_t *data, WorkloadParams &p)
{
    p.ls = getF64(data + 0 * 8);
    p.msdat = getF64(data + 1 * 8);
    p.mains = getF64(data + 2 * 8);
    p.md = getF64(data + 3 * 8);
    p.shd = getF64(data + 4 * 8);
    p.wr = getF64(data + 5 * 8);
    p.apl = getF64(data + 6 * 8);
    p.mdshd = getF64(data + 7 * 8);
    p.oclean = getF64(data + 8 * 8);
    p.opres = getF64(data + 9 * 8);
    p.nshd = getF64(data + 10 * 8);
}

std::string
lowercase(std::string_view text)
{
    std::string out(text);
    for (char &c : out) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

bool
schemeFromToken(std::string_view token, Scheme &scheme)
{
    const std::string name = lowercase(token);
    if (name == "base") {
        scheme = Scheme::Base;
    } else if (name == "nocache" || name == "no-cache") {
        scheme = Scheme::NoCache;
    } else if (name == "softwareflush" || name == "software-flush" ||
               name == "swflush") {
        scheme = Scheme::SoftwareFlush;
    } else if (name == "dragon") {
        scheme = Scheme::Dragon;
    } else if (name == "mesi") {
        scheme = Scheme::Mesi;
    } else if (name == "mesif") {
        scheme = Scheme::Mesif;
    } else if (name == "moesi") {
        scheme = Scheme::Moesi;
    } else if (name == "hybrid" || name == "adaptive-hybrid") {
        scheme = Scheme::Hybrid;
    } else {
        return false;
    }
    return true;
}

/** Sets one workload parameter by its JSON key; false if unknown. */
bool
setParamByName(WorkloadParams &params, std::string_view key,
               double value)
{
    if (key == "ls") {
        params.ls = value;
    } else if (key == "msdat") {
        params.msdat = value;
    } else if (key == "mains") {
        params.mains = value;
    } else if (key == "md") {
        params.md = value;
    } else if (key == "shd") {
        params.shd = value;
    } else if (key == "wr") {
        params.wr = value;
    } else if (key == "apl") {
        params.apl = value;
    } else if (key == "mdshd") {
        params.mdshd = value;
    } else if (key == "oclean") {
        params.oclean = value;
    } else if (key == "opres") {
        params.opres = value;
    } else if (key == "nshd") {
        params.nshd = value;
    } else {
        return false;
    }
    return true;
}

/** Parses one JSON request document into @p frame (fieldError on bad). */
void
parseJsonRequest(std::string_view line, RequestFrame &frame)
{
    frame.json = true;
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(line);
    } catch (const std::exception &e) {
        frame.fieldError = std::string("bad JSON request: ") + e.what();
        return;
    }
    if (!doc.isObject()) {
        frame.fieldError = "JSON request must be an object";
        return;
    }
    bool saw_size = false;
    for (const auto &[key, value] : doc.object) {
        if (key == "cmd") {
            if (!value.isString()) {
                frame.fieldError = "cmd must be a string";
                return;
            }
            const std::string cmd = lowercase(value.string);
            if (cmd == "stats") {
                frame.kind = RequestKind::Stats;
            } else if (cmd == "ping") {
                frame.kind = RequestKind::Ping;
            } else if (cmd == "scrape") {
                frame.kind = RequestKind::Scrape;
            } else {
                frame.fieldError = "unknown cmd \"" + value.string +
                    "\" (expected stats, ping, or scrape)";
                return;
            }
        } else if (key == "domain") {
            if (!value.isString()) {
                frame.fieldError = "domain must be a string";
                return;
            }
            const std::string domain = lowercase(value.string);
            if (domain == "bus") {
                frame.query.domain = QueryDomain::Bus;
            } else if (domain == "network") {
                frame.query.domain = QueryDomain::Network;
            } else {
                frame.fieldError = "unknown domain \"" + value.string +
                    "\" (expected bus or network)";
                return;
            }
        } else if (key == "scheme") {
            if (!value.isString() ||
                !schemeFromToken(value.string, frame.query.scheme)) {
                frame.fieldError =
                    "unknown scheme (expected base, nocache, "
                    "softwareflush, dragon, mesi, mesif, moesi, or "
                    "hybrid)";
                return;
            }
        } else if (key == "size" || key == "n" || key == "cpus" ||
                   key == "stages") {
            if (!value.isNumber() || value.number < 0.0 ||
                value.number > 4294967295.0 ||
                value.number != static_cast<double>(
                    static_cast<std::uint32_t>(value.number))) {
                frame.fieldError =
                    "machine size must be an unsigned integer";
                return;
            }
            frame.query.size = static_cast<unsigned>(value.number);
            saw_size = true;
        } else if (key == "params") {
            if (!value.isObject()) {
                frame.fieldError = "params must be an object";
                return;
            }
            for (const auto &[pkey, pvalue] : value.object) {
                if (!pvalue.isNumber()) {
                    frame.fieldError = "workload parameter " + pkey +
                        " must be a number";
                    return;
                }
                if (!setParamByName(frame.query.params, pkey,
                                    pvalue.number)) {
                    frame.fieldError =
                        "unknown workload parameter \"" + pkey + "\"";
                    return;
                }
            }
        } else {
            frame.fieldError =
                "unknown request field \"" + key + "\"";
            return;
        }
    }
    if (frame.kind == RequestKind::Query && !saw_size) {
        frame.fieldError = "query is missing its machine size "
                           "(\"n\"/\"cpus\"/\"stages\")";
    }
}

void
appendJsonDouble(std::string &out, std::string_view key, double value)
{
    out += '"';
    out += key;
    out += "\":";
    out += formatDouble(value);
}

std::string
queryResultToJson(const QueryResult &result)
{
    std::string out;
    if (!result.ok) {
        out = "{\"ok\":false,\"error\":\"" +
            obs::jsonEscape(result.error) + "\"}";
        return out;
    }
    out = "{\"ok\":true,\"domain\":\"";
    out += domainName(result.domain);
    out += "\",";
    if (result.domain == QueryDomain::Bus) {
        const BusSolution &s = result.bus;
        out += "\"processors\":" + std::to_string(s.processors) + ",";
        appendJsonDouble(out, "cpu", s.cpu);
        out += ',';
        appendJsonDouble(out, "bus", s.bus);
        out += ',';
        appendJsonDouble(out, "waiting", s.waiting);
        out += ',';
        appendJsonDouble(out, "busUtilization", s.busUtilization);
        out += ',';
        appendJsonDouble(out, "busQueueLength", s.busQueueLength);
        out += ',';
        appendJsonDouble(out, "processorUtilization",
                         s.processorUtilization);
        out += ',';
        appendJsonDouble(out, "processingPower", s.processingPower);
    } else {
        const NetworkSolution &s = result.network;
        out += "\"stages\":" + std::to_string(s.stages) + ",";
        out += "\"processors\":" + std::to_string(s.processors) + ",";
        appendJsonDouble(out, "cpu", s.cpu);
        out += ',';
        appendJsonDouble(out, "network", s.network);
        out += ',';
        appendJsonDouble(out, "transactionRate", s.transactionRate);
        out += ',';
        appendJsonDouble(out, "unitRequestRate", s.unitRequestRate);
        out += ',';
        appendJsonDouble(out, "computeFraction", s.computeFraction);
        out += ',';
        appendJsonDouble(out, "inputLoad", s.inputLoad);
        out += ',';
        appendJsonDouble(out, "acceptance", s.acceptance);
        out += ',';
        appendJsonDouble(out, "cyclesPerInstruction",
                         s.cyclesPerInstruction);
        out += ',';
        appendJsonDouble(out, "waiting", s.waiting);
        out += ',';
        appendJsonDouble(out, "processorUtilization",
                         s.processorUtilization);
        out += ',';
        appendJsonDouble(out, "processingPower", s.processingPower);
    }
    out += '}';
    return out;
}

/** Reads one numeric member into @p out; false if absent/not numeric. */
bool
jsonNumber(const obs::JsonValue &doc, std::string_view key,
           double &out)
{
    const obs::JsonValue *value = doc.find(key);
    if (value == nullptr || !value->isNumber()) {
        return false;
    }
    out = value->number;
    return true;
}

bool
parseJsonResponse(std::string_view line, ResponseFrame &frame,
                  std::string &error)
{
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(line);
    } catch (const std::exception &e) {
        error = std::string("bad JSON response: ") + e.what();
        return false;
    }
    if (!doc.isObject()) {
        error = "JSON response must be an object";
        return false;
    }
    const obs::JsonValue *ok = doc.find("ok");
    if (ok == nullptr || ok->type != obs::JsonValue::Type::Bool) {
        // A stats document or other text payload: pass it through.
        frame.status = ResponseStatus::Ok;
        frame.text = line;
        return true;
    }
    if (!ok->boolean) {
        frame.status = ResponseStatus::BadRequest;
        const obs::JsonValue *message = doc.find("error");
        frame.text = message != nullptr && message->isString()
            ? message->string
            : "unknown error";
        return true;
    }
    const obs::JsonValue *domain = doc.find("domain");
    if (domain == nullptr || !domain->isString()) {
        // ok:true without a domain: a control acknowledgement.
        frame.status = ResponseStatus::Ok;
        frame.text = line;
        return true;
    }
    frame.status = ResponseStatus::Ok;
    frame.isQueryResult = true;
    double number = 0.0;
    if (domain->string == "bus") {
        frame.domain = QueryDomain::Bus;
        BusSolution &s = frame.bus;
        if (!jsonNumber(doc, "processors", number)) {
            error = "bus response missing processors";
            return false;
        }
        s.processors = static_cast<unsigned>(number);
        jsonNumber(doc, "cpu", s.cpu);
        jsonNumber(doc, "bus", s.bus);
        jsonNumber(doc, "waiting", s.waiting);
        jsonNumber(doc, "busUtilization", s.busUtilization);
        jsonNumber(doc, "busQueueLength", s.busQueueLength);
        jsonNumber(doc, "processorUtilization", s.processorUtilization);
        jsonNumber(doc, "processingPower", s.processingPower);
    } else {
        frame.domain = QueryDomain::Network;
        NetworkSolution &s = frame.network;
        if (!jsonNumber(doc, "stages", number)) {
            error = "network response missing stages";
            return false;
        }
        s.stages = static_cast<unsigned>(number);
        if (jsonNumber(doc, "processors", number)) {
            s.processors = static_cast<unsigned>(number);
        }
        jsonNumber(doc, "cpu", s.cpu);
        jsonNumber(doc, "network", s.network);
        jsonNumber(doc, "transactionRate", s.transactionRate);
        jsonNumber(doc, "unitRequestRate", s.unitRequestRate);
        jsonNumber(doc, "computeFraction", s.computeFraction);
        jsonNumber(doc, "inputLoad", s.inputLoad);
        jsonNumber(doc, "acceptance", s.acceptance);
        jsonNumber(doc, "cyclesPerInstruction", s.cyclesPerInstruction);
        jsonNumber(doc, "waiting", s.waiting);
        jsonNumber(doc, "processorUtilization", s.processorUtilization);
        jsonNumber(doc, "processingPower", s.processingPower);
    }
    return true;
}

/** Locates one text line; returns NeedMore/BadFrame/Frame. */
DecodeStatus
takeLine(const std::uint8_t *data, std::size_t size,
         std::size_t &consumed, std::string_view &line,
         std::string &error)
{
    const std::size_t window = std::min(size, kMaxJsonLine);
    const void *nl = std::memchr(data, '\n', window);
    if (nl == nullptr) {
        if (size >= kMaxJsonLine) {
            error = "JSON request line exceeds " +
                std::to_string(kMaxJsonLine) + " bytes";
            return DecodeStatus::BadFrame;
        }
        return DecodeStatus::NeedMore;
    }
    std::size_t length = static_cast<std::size_t>(
        static_cast<const std::uint8_t *>(nl) - data);
    consumed = length + 1;
    if (length > 0 && data[length - 1] == '\r') {
        --length;
    }
    line = std::string_view(reinterpret_cast<const char *>(data),
                            length);
    return DecodeStatus::Frame;
}

} // namespace

std::string
formatDouble(double value)
{
    char buffer[40];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    if (ec != std::errc()) {
        return "0"; // Cannot happen: the buffer fits any double.
    }
    return std::string(buffer, ptr);
}

void
appendQueryRequest(std::vector<std::uint8_t> &out, const Query &query)
{
    putHeader(out, kRequestMagic,
              static_cast<std::uint8_t>(RequestKind::Query), 0,
              kQueryPayload);
    out.push_back(static_cast<std::uint8_t>(query.domain));
    out.push_back(static_cast<std::uint8_t>(query.scheme));
    putU16(out, 0);
    putU32(out, query.size);
    putParams(out, query.params);
}

void
appendControlRequest(std::vector<std::uint8_t> &out, RequestKind kind)
{
    putHeader(out, kRequestMagic, static_cast<std::uint8_t>(kind), 0,
              0);
}

void
appendQueryResponse(std::vector<std::uint8_t> &out,
                    const QueryResult &result, bool json)
{
    if (json) {
        const std::string line = queryResultToJson(result) + "\n";
        out.insert(out.end(), line.begin(), line.end());
        return;
    }
    if (!result.ok) {
        appendTextResponse(out, ResponseStatus::BadRequest,
                           result.error, false);
        return;
    }
    std::vector<std::uint8_t> payload;
    PayloadType type;
    payload.push_back(static_cast<std::uint8_t>(result.domain));
    payload.push_back(0);
    payload.push_back(0);
    payload.push_back(0);
    if (result.domain == QueryDomain::Bus) {
        type = PayloadType::BusResult;
        const BusSolution &s = result.bus;
        putU32(payload, s.processors);
        putF64(payload, s.cpu);
        putF64(payload, s.bus);
        putF64(payload, s.waiting);
        putF64(payload, s.busUtilization);
        putF64(payload, s.busQueueLength);
        putF64(payload, s.processorUtilization);
        putF64(payload, s.processingPower);
    } else {
        type = PayloadType::NetworkResult;
        const NetworkSolution &s = result.network;
        putU32(payload, s.stages);
        putU32(payload, s.processors);
        putU32(payload, 0);
        putF64(payload, s.cpu);
        putF64(payload, s.network);
        putF64(payload, s.transactionRate);
        putF64(payload, s.unitRequestRate);
        putF64(payload, s.computeFraction);
        putF64(payload, s.inputLoad);
        putF64(payload, s.acceptance);
        putF64(payload, s.cyclesPerInstruction);
        putF64(payload, s.waiting);
        putF64(payload, s.processorUtilization);
        putF64(payload, s.processingPower);
    }
    putHeader(out, kResponseMagic,
              static_cast<std::uint8_t>(ResponseStatus::Ok),
              static_cast<std::uint8_t>(type),
              static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

void
appendTextResponse(std::vector<std::uint8_t> &out,
                   ResponseStatus status, std::string_view text,
                   bool json)
{
    if (json) {
        std::string line;
        if (status == ResponseStatus::Ok) {
            line.assign(text);
        } else {
            line = "{\"ok\":false,\"error\":\"" +
                obs::jsonEscape(text) + "\"}";
        }
        line += '\n';
        out.insert(out.end(), line.begin(), line.end());
        return;
    }
    const std::size_t length =
        std::min<std::size_t>(text.size(), kMaxResponsePayload);
    putHeader(out, kResponseMagic, static_cast<std::uint8_t>(status),
              static_cast<std::uint8_t>(PayloadType::Text),
              static_cast<std::uint32_t>(length));
    out.insert(out.end(), text.begin(), text.begin() +
               static_cast<std::ptrdiff_t>(length));
}

DecodeStatus
decodeRequest(const std::uint8_t *data, std::size_t size,
              std::size_t &consumed, RequestFrame &frame,
              std::string &error)
{
    consumed = 0;
    frame = RequestFrame{};
    if (size == 0) {
        return DecodeStatus::NeedMore;
    }
    if (data[0] == '{') {
        std::string_view line;
        const DecodeStatus status =
            takeLine(data, size, consumed, line, error);
        if (status != DecodeStatus::Frame) {
            return status;
        }
        parseJsonRequest(line, frame);
        return DecodeStatus::Frame;
    }
    if (data[0] != kRequestMagic) {
        error = "unrecognized request framing (expected binary magic "
                "or a JSON line)";
        return DecodeStatus::BadFrame;
    }
    if (size < kFrameHeader) {
        return DecodeStatus::NeedMore;
    }
    if (data[1] != kProtocolVersion) {
        error = "unsupported protocol version " +
            std::to_string(int{data[1]});
        return DecodeStatus::BadFrame;
    }
    const std::uint32_t length = getU32(data + 4);
    if (length > kMaxRequestPayload) {
        error = "request length prefix " + std::to_string(length) +
            " exceeds the " + std::to_string(kMaxRequestPayload) +
            "-byte limit";
        return DecodeStatus::BadFrame;
    }
    if (size < kFrameHeader + length) {
        return DecodeStatus::NeedMore;
    }
    consumed = kFrameHeader + length;
    const std::uint8_t kind = data[2];
    const std::uint8_t *payload = data + kFrameHeader;
    switch (kind) {
      case static_cast<std::uint8_t>(RequestKind::Query): {
        frame.kind = RequestKind::Query;
        if (length != kQueryPayload) {
            frame.fieldError = "query payload must be " +
                std::to_string(kQueryPayload) + " bytes, got " +
                std::to_string(length);
            return DecodeStatus::Frame;
        }
        const std::uint8_t domain = payload[0];
        const std::uint8_t scheme = payload[1];
        if (domain > 1) {
            frame.fieldError = "unknown query domain";
            return DecodeStatus::Frame;
        }
        if (scheme >= kNumSchemes) {
            frame.fieldError = "unknown scheme";
            return DecodeStatus::Frame;
        }
        frame.query.domain = static_cast<QueryDomain>(domain);
        frame.query.scheme = static_cast<Scheme>(scheme);
        frame.query.size = getU32(payload + 4);
        getParams(payload + 8, frame.query.params);
        return DecodeStatus::Frame;
      }
      case static_cast<std::uint8_t>(RequestKind::Stats):
      case static_cast<std::uint8_t>(RequestKind::Ping):
      case static_cast<std::uint8_t>(RequestKind::Scrape):
        frame.kind = static_cast<RequestKind>(kind);
        if (length != 0) {
            frame.fieldError = "control requests carry no payload";
        }
        return DecodeStatus::Frame;
      default:
        frame.fieldError =
            "unknown request kind " + std::to_string(int{kind});
        return DecodeStatus::Frame;
    }
}

DecodeStatus
decodeResponse(const std::uint8_t *data, std::size_t size,
               std::size_t &consumed, ResponseFrame &frame,
               std::string &error)
{
    consumed = 0;
    frame = ResponseFrame{};
    if (size == 0) {
        return DecodeStatus::NeedMore;
    }
    if (data[0] == '{') {
        std::string_view line;
        const DecodeStatus status =
            takeLine(data, size, consumed, line, error);
        if (status != DecodeStatus::Frame) {
            return status;
        }
        return parseJsonResponse(line, frame, error)
            ? DecodeStatus::Frame
            : DecodeStatus::BadFrame;
    }
    if (data[0] != kResponseMagic) {
        error = "unrecognized response framing";
        return DecodeStatus::BadFrame;
    }
    if (size < kFrameHeader) {
        return DecodeStatus::NeedMore;
    }
    if (data[1] != kProtocolVersion) {
        error = "unsupported protocol version";
        return DecodeStatus::BadFrame;
    }
    const std::uint32_t length = getU32(data + 4);
    if (length > kMaxResponsePayload) {
        error = "response length prefix exceeds limit";
        return DecodeStatus::BadFrame;
    }
    if (size < kFrameHeader + length) {
        return DecodeStatus::NeedMore;
    }
    consumed = kFrameHeader + length;
    frame.status = static_cast<ResponseStatus>(data[2]);
    const std::uint8_t type = data[3];
    const std::uint8_t *payload = data + kFrameHeader;
    if (type == static_cast<std::uint8_t>(PayloadType::Text)) {
        frame.text.assign(reinterpret_cast<const char *>(payload),
                          length);
        return DecodeStatus::Frame;
    }
    if (type == static_cast<std::uint8_t>(PayloadType::BusResult)) {
        if (length != 4 + 4 + 7 * 8) {
            error = "bus result payload has the wrong size";
            return DecodeStatus::BadFrame;
        }
        frame.isQueryResult = true;
        frame.domain = QueryDomain::Bus;
        BusSolution &s = frame.bus;
        s.processors = getU32(payload + 4);
        s.cpu = getF64(payload + 8);
        s.bus = getF64(payload + 16);
        s.waiting = getF64(payload + 24);
        s.busUtilization = getF64(payload + 32);
        s.busQueueLength = getF64(payload + 40);
        s.processorUtilization = getF64(payload + 48);
        s.processingPower = getF64(payload + 56);
        return DecodeStatus::Frame;
    }
    if (type == static_cast<std::uint8_t>(PayloadType::NetworkResult)) {
        if (length != 4 + 4 + 4 + 4 + 11 * 8) {
            error = "network result payload has the wrong size";
            return DecodeStatus::BadFrame;
        }
        frame.isQueryResult = true;
        frame.domain = QueryDomain::Network;
        NetworkSolution &s = frame.network;
        s.stages = getU32(payload + 4);
        s.processors = getU32(payload + 8);
        s.cpu = getF64(payload + 16);
        s.network = getF64(payload + 24);
        s.transactionRate = getF64(payload + 32);
        s.unitRequestRate = getF64(payload + 40);
        s.computeFraction = getF64(payload + 48);
        s.inputLoad = getF64(payload + 56);
        s.acceptance = getF64(payload + 64);
        s.cyclesPerInstruction = getF64(payload + 72);
        s.waiting = getF64(payload + 80);
        s.processorUtilization = getF64(payload + 88);
        s.processingPower = getF64(payload + 96);
        return DecodeStatus::Frame;
    }
    error = "unknown response payload type";
    return DecodeStatus::BadFrame;
}

std::string
queryToJson(const Query &query)
{
    std::string out = "{\"domain\":\"";
    out += domainName(query.domain);
    out += "\",\"scheme\":\"";
    out += schemeName(query.scheme);
    out += "\",\"";
    out += query.domain == QueryDomain::Bus ? "cpus" : "stages";
    out += "\":" + std::to_string(query.size) + ",\"params\":{";
    const WorkloadParams &p = query.params;
    appendJsonDouble(out, "ls", p.ls);
    out += ',';
    appendJsonDouble(out, "msdat", p.msdat);
    out += ',';
    appendJsonDouble(out, "mains", p.mains);
    out += ',';
    appendJsonDouble(out, "md", p.md);
    out += ',';
    appendJsonDouble(out, "shd", p.shd);
    out += ',';
    appendJsonDouble(out, "wr", p.wr);
    out += ',';
    appendJsonDouble(out, "apl", p.apl);
    out += ',';
    appendJsonDouble(out, "mdshd", p.mdshd);
    out += ',';
    appendJsonDouble(out, "oclean", p.oclean);
    out += ',';
    appendJsonDouble(out, "opres", p.opres);
    out += ',';
    appendJsonDouble(out, "nshd", p.nshd);
    out += "}}";
    return out;
}

} // namespace swcc::service
